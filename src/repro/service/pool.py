"""Persistent service workers: the processes that execute jobs.

The pool follows the shape of the parallel engine's worker machinery
(persistent processes, explicit liveness handling) at the *job* level:
each worker is one long-lived process with its **own task pipe** —
assignments are explicit, so the scheduler always knows which job a
dead worker was holding and can requeue exactly that one — and a
per-worker event pipe carries ``started`` / ``progress`` / ``result``
/ ``error`` events back.

Why pipes and not ``multiprocessing.Queue``: queues synchronize with
semaphores in shared memory, and a worker SIGKILLed mid-``put``/``get``
leaves the semaphore held — wedging every other process that touches
the queue, including the respawned replacement.  The pool's whole job
is to *survive* SIGKILL, so each worker gets dedicated single-writer/
single-reader pipes (no cross-process locks to orphan), and a respawn
swaps in **fresh** pipes: whatever a dying worker half-wrote can never
corrupt its successor's channel.  Nothing queues invisibly either —
each worker holds at most the one task in :attr:`WorkerPool._assigned
<repro.service.scheduler.BatchService>`'s books, which the scheduler
requeues itself.

Workers are deliberately **non-daemonic**: a job with ``workers > 1``
spawns the parallel engine's (daemonic) worker processes underneath,
and daemonic processes may not have children.  The pool therefore owns
explicit teardown (:meth:`WorkerPool.close`), and the scheduler's
liveness sweep — not process inheritance — is what cleans up after a
crash.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import traceback
import warnings
from collections import deque
from multiprocessing import connection

from repro.service.runner import execute_job
from repro.service.spec import JobSpec

__all__ = ["WorkerPool"]

#: Sentinel task telling a worker to exit its loop.
_STOP = "__stop__"

#: Consecutive deaths *before the ready handshake* after which a slot
#: is retired instead of respawned.  A worker dying at boot will die at
#: every boot (classic cause: a ``spawn`` child cannot re-import the
#: host's ``__main__``), and respawning it forever is a crash loop.
BOOT_FAILURE_LIMIT = 3


def _spawn_can_import_main() -> bool:
    """Whether a ``spawn`` child could re-import this host's ``__main__``.

    ``spawn`` re-runs the parent's main module inside each child.  That
    works for real script files and ``python -m`` packages, but a main
    read from stdin (``python - <<EOF`` heredocs) advertises a
    ``__file__`` of ``<stdin>`` that no child can open — every worker
    would die at boot.  Mirrors the decision order of
    ``multiprocessing.spawn.get_preparation_data``: an importable spec
    wins, no ``__file__`` means nothing to re-run, otherwise the file
    must actually exist.
    """
    main = sys.modules.get("__main__")
    if main is None or getattr(main, "__spec__", None) is not None:
        return True
    path = getattr(main, "__file__", None)
    return path is None or os.path.exists(path)


def _pool_worker_main(worker_id: int, tasks, events) -> None:
    """One service worker: take a job, run it, report, repeat."""
    try:
        # Check in once the interpreter is actually up: under spawn a
        # worker spends its first ~second importing, and callers that
        # measure steady-state throughput wait for this handshake.
        events.send(
            {"kind": "ready", "worker": worker_id, "pid": os.getpid()}
        )
    except (BrokenPipeError, OSError):
        return
    while True:
        try:
            item = tasks.recv()
        except (EOFError, OSError):
            return  # scheduler side is gone; nothing left to serve
        if item == _STOP:
            return
        job_id, spec_data = item

        def emit(payload: dict) -> None:
            try:
                events.send(payload)
            except (BrokenPipeError, OSError):
                # The scheduler replaced this incarnation (or died);
                # results for a superseded worker are dropped by design.
                raise SystemExit(0) from None

        emit({"kind": "started", "job": job_id, "worker": worker_id,
              "pid": os.getpid()})
        try:
            spec = JobSpec.from_json(spec_data)
            result = execute_job(
                spec,
                progress=lambda done, total: emit(
                    {"kind": "progress", "job": job_id, "worker": worker_id,
                     "done": done, "total": total}
                ),
                worker_id=worker_id,
            )
            emit({"kind": "result", "job": job_id, "worker": worker_id,
                  "result": result.to_json()})
        except SystemExit:
            raise
        except BaseException:
            emit({"kind": "error", "job": job_id, "worker": worker_id,
                  "error": traceback.format_exc()})


class WorkerPool:
    """A fixed-size pool of persistent job-executing processes.

    Parameters
    ----------
    n_workers:
        Pool size.  Each worker holds at most one job at a time.
    start_method:
        ``multiprocessing`` start method; default ``spawn``.  The host
        process is multithreaded by construction — the scheduler thread
        respawns workers while submitter threads run — and ``fork``
        from a multithreaded process clones whatever locks (import
        lock, allocator) happen to be held into a child that has no
        thread to release them, which can deadlock the very
        SIGKILL-recovery respawn the pool exists for.  ``spawn`` starts
        each worker from a clean interpreter; the cost is per-(re)spawn
        only, since workers are persistent.  Pass ``fork`` explicitly
        to accept the risk.  When the host's ``__main__`` is not
        importable by a spawn child (stdin-fed scripts), the default
        falls back to ``fork`` with a :class:`RuntimeWarning` rather
        than crash-looping every worker at boot.
    """

    def __init__(self, n_workers: int, *, start_method: str | None = None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        if start_method is None:
            if _spawn_can_import_main():
                start_method = "spawn"
            else:
                start_method = "fork"
                warnings.warn(
                    "this host's __main__ is not importable by spawn "
                    "children (stdin-fed script?); falling back to the "
                    "fork start method — forking a multithreaded "
                    "process can deadlock children, so prefer running "
                    "from a real script file",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self._ctx = mp.get_context(start_method)
        self._workers: list = [None] * self.n_workers
        self._task_w: list = [None] * self.n_workers
        self._event_r: list = [None] * self.n_workers
        self._event_buffer: deque[dict] = deque()
        #: Per-worker boot handshake received (see ``ready_count``).
        self._ready: list[bool] = [False] * self.n_workers
        #: Consecutive before-ready deaths per slot (see ``respawn``).
        self._boot_failures: list[int] = [0] * self.n_workers
        #: Total processes ever spawned (respawns included).
        self.spawned = 0
        for worker_id in range(self.n_workers):
            self._spawn(worker_id)
        self._closed = False

    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> None:
        task_r, task_w = self._ctx.Pipe(duplex=False)
        event_r, event_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(worker_id, task_r, event_w),
            daemon=False,  # jobs may spawn engine-worker children
            name=f"repro-service-worker-{worker_id}",
        )
        process.start()
        # Parent keeps only its ends; the child holds the others.
        task_r.close()
        event_w.close()
        self._workers[worker_id] = process
        self._task_w[worker_id] = task_w
        self._event_r[worker_id] = event_r
        self._ready[worker_id] = False
        self.spawned += 1

    def assign(self, worker_id: int, job_id: str, spec: JobSpec) -> None:
        """Hand one job to one specific worker.

        A send to a just-died worker is swallowed: the scheduler's
        liveness sweep will find the corpse and requeue the job.
        """
        try:
            self._task_w[worker_id].send((job_id, spec.to_json()))
        except (BrokenPipeError, OSError):
            pass

    def ready_count(self) -> int:
        """Workers whose boot handshake has been consumed so far.

        Only advances while someone drains :meth:`next_event` (the
        scheduler thread, in service use).
        """
        return sum(self._ready)

    def retired(self, worker_id: int) -> bool:
        """True when this slot hit the boot-failure limit and is dead
        for good (no process, no pipes, no further respawns)."""
        return self._workers[worker_id] is None

    def usable_slots(self) -> int:
        """Slots that still have (or can get) a live worker."""
        return sum(process is not None for process in self._workers)

    def is_alive(self, worker_id: int) -> bool:
        process = self._workers[worker_id]
        return process is not None and process.is_alive()

    def pid(self, worker_id: int) -> int | None:
        process = self._workers[worker_id]
        return None if process is None else process.pid

    def respawn(self, worker_id: int) -> bool:
        """Replace a dead worker with a fresh process on fresh pipes.

        The dead incarnation's pipes are dropped unread — a process
        killed mid-send can leave a truncated message, and a fresh
        channel is the only state a successor can trust.  Any task the
        corpse held is the scheduler's to requeue (it tracks the one
        in-flight job per worker).

        Returns ``True`` when a fresh process was started.  A worker
        that died *before its ready handshake* was consumed counts as a
        boot failure; after :data:`BOOT_FAILURE_LIMIT` consecutive boot
        failures the slot is **retired** (returns ``False``) instead of
        respawned — the same death would recur at every boot, and an
        unconditional respawn would crash-loop forever.
        """
        process = self._workers[worker_id]
        if process is not None:
            process.join(timeout=1.0)
        if self._ready[worker_id]:
            self._boot_failures[worker_id] = 0  # it booted; a real death
        else:
            self._boot_failures[worker_id] += 1
        for conn in (self._task_w[worker_id], self._event_r[worker_id]):
            if conn is not None:
                conn.close()
        if self._boot_failures[worker_id] >= BOOT_FAILURE_LIMIT:
            self._workers[worker_id] = None
            self._task_w[worker_id] = None
            self._event_r[worker_id] = None
            self._ready[worker_id] = False
            return False
        self._spawn(worker_id)
        return True

    def next_event(self, timeout: float = 0.1) -> dict | None:
        """Pop one worker event, or None after ``timeout`` seconds."""
        if self._event_buffer:
            return self._event_buffer.popleft()
        readers = [conn for conn in self._event_r if conn is not None]
        if not readers:
            return None
        for conn in connection.wait(readers, timeout):
            try:
                event = conn.recv()
            except (EOFError, OSError):
                # Writer died; the liveness sweep owns the cleanup.
                continue
            if event.get("kind") == "ready":
                self._ready[event["worker"]] = True  # boot handshake
                continue
            self._event_buffer.append(event)
        return self._event_buffer.popleft() if self._event_buffer else None

    # ------------------------------------------------------------------
    def close(self, *, timeout: float = 5.0) -> None:
        """Stop every worker (stop sentinel, then terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        for worker_id, process in enumerate(self._workers):
            if process is not None and process.is_alive():
                try:
                    self._task_w[worker_id].send(_STOP)
                except (BrokenPipeError, OSError):
                    pass
        for process in self._workers:
            if process is None:
                continue
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=timeout)
        for conn in (*self._task_w, *self._event_r):
            if conn is not None:
                conn.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
