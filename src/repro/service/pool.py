"""Persistent service workers: the processes that execute jobs.

The pool follows the shape of the parallel engine's worker machinery
(persistent processes, explicit liveness handling) at the *job* level:
each worker is one long-lived process with its **own task pipe** —
assignments are explicit, so the scheduler always knows which job a
dead worker was holding and can requeue exactly that one — and a
per-worker event pipe carries ``started`` / ``progress`` / ``result``
/ ``error`` events back.

Why pipes and not ``multiprocessing.Queue``: queues synchronize with
semaphores in shared memory, and a worker SIGKILLed mid-``put``/``get``
leaves the semaphore held — wedging every other process that touches
the queue, including the respawned replacement.  The pool's whole job
is to *survive* SIGKILL, so each worker gets dedicated single-writer/
single-reader pipes (no cross-process locks to orphan), and a respawn
swaps in **fresh** pipes: whatever a dying worker half-wrote can never
corrupt its successor's channel.  Nothing queues invisibly either —
each worker holds at most the one task in :attr:`WorkerPool._assigned
<repro.service.scheduler.BatchService>`'s books, which the scheduler
requeues itself.

Workers are deliberately **non-daemonic**: a job with ``workers > 1``
spawns the parallel engine's (daemonic) worker processes underneath,
and daemonic processes may not have children.  The pool therefore owns
explicit teardown (:meth:`WorkerPool.close`), and the scheduler's
liveness sweep — not process inheritance — is what cleans up after a
crash.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
from collections import deque
from multiprocessing import connection

from repro.service.runner import execute_job
from repro.service.spec import JobSpec

__all__ = ["WorkerPool"]

#: Sentinel task telling a worker to exit its loop.
_STOP = "__stop__"


def _pool_worker_main(worker_id: int, tasks, events) -> None:
    """One service worker: take a job, run it, report, repeat."""
    while True:
        try:
            item = tasks.recv()
        except (EOFError, OSError):
            return  # scheduler side is gone; nothing left to serve
        if item == _STOP:
            return
        job_id, spec_data = item

        def emit(payload: dict) -> None:
            try:
                events.send(payload)
            except (BrokenPipeError, OSError):
                # The scheduler replaced this incarnation (or died);
                # results for a superseded worker are dropped by design.
                raise SystemExit(0) from None

        emit({"kind": "started", "job": job_id, "worker": worker_id,
              "pid": os.getpid()})
        try:
            spec = JobSpec.from_json(spec_data)
            result = execute_job(
                spec,
                progress=lambda done, total: emit(
                    {"kind": "progress", "job": job_id, "worker": worker_id,
                     "done": done, "total": total}
                ),
                worker_id=worker_id,
            )
            emit({"kind": "result", "job": job_id, "worker": worker_id,
                  "result": result.to_json()})
        except SystemExit:
            raise
        except BaseException:
            emit({"kind": "error", "job": job_id, "worker": worker_id,
                  "error": traceback.format_exc()})


class WorkerPool:
    """A fixed-size pool of persistent job-executing processes.

    Parameters
    ----------
    n_workers:
        Pool size.  Each worker holds at most one job at a time.
    start_method:
        ``multiprocessing`` start method; ``fork`` where available.
    """

    def __init__(self, n_workers: int, *, start_method: str | None = None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._workers: list = [None] * self.n_workers
        self._task_w: list = [None] * self.n_workers
        self._event_r: list = [None] * self.n_workers
        self._event_buffer: deque[dict] = deque()
        #: Total processes ever spawned (respawns included).
        self.spawned = 0
        for worker_id in range(self.n_workers):
            self._spawn(worker_id)
        self._closed = False

    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> None:
        task_r, task_w = self._ctx.Pipe(duplex=False)
        event_r, event_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(worker_id, task_r, event_w),
            daemon=False,  # jobs may spawn engine-worker children
            name=f"repro-service-worker-{worker_id}",
        )
        process.start()
        # Parent keeps only its ends; the child holds the others.
        task_r.close()
        event_w.close()
        self._workers[worker_id] = process
        self._task_w[worker_id] = task_w
        self._event_r[worker_id] = event_r
        self.spawned += 1

    def assign(self, worker_id: int, job_id: str, spec: JobSpec) -> None:
        """Hand one job to one specific worker.

        A send to a just-died worker is swallowed: the scheduler's
        liveness sweep will find the corpse and requeue the job.
        """
        try:
            self._task_w[worker_id].send((job_id, spec.to_json()))
        except (BrokenPipeError, OSError):
            pass

    def is_alive(self, worker_id: int) -> bool:
        process = self._workers[worker_id]
        return process is not None and process.is_alive()

    def pid(self, worker_id: int) -> int | None:
        process = self._workers[worker_id]
        return None if process is None else process.pid

    def respawn(self, worker_id: int) -> None:
        """Replace a dead worker with a fresh process on fresh pipes.

        The dead incarnation's pipes are dropped unread — a process
        killed mid-send can leave a truncated message, and a fresh
        channel is the only state a successor can trust.  Any task the
        corpse held is the scheduler's to requeue (it tracks the one
        in-flight job per worker).
        """
        process = self._workers[worker_id]
        if process is not None:
            process.join(timeout=1.0)
        for conn in (self._task_w[worker_id], self._event_r[worker_id]):
            if conn is not None:
                conn.close()
        self._spawn(worker_id)

    def next_event(self, timeout: float = 0.1) -> dict | None:
        """Pop one worker event, or None after ``timeout`` seconds."""
        if self._event_buffer:
            return self._event_buffer.popleft()
        readers = [conn for conn in self._event_r if conn is not None]
        if not readers:
            return None
        for conn in connection.wait(readers, timeout):
            try:
                self._event_buffer.append(conn.recv())
            except (EOFError, OSError):
                # Writer died; the liveness sweep owns the cleanup.
                continue
        return self._event_buffer.popleft() if self._event_buffer else None

    # ------------------------------------------------------------------
    def close(self, *, timeout: float = 5.0) -> None:
        """Stop every worker (stop sentinel, then terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        for worker_id, process in enumerate(self._workers):
            if process is not None and process.is_alive():
                try:
                    self._task_w[worker_id].send(_STOP)
                except (BrokenPipeError, OSError):
                    pass
        for process in self._workers:
            if process is None:
                continue
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=timeout)
        for conn in (*self._task_w, *self._event_r):
            if conn is not None:
                conn.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
