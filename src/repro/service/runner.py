"""Execute one :class:`JobSpec` to a :class:`JobResult`.

This is the code a pool worker (or an in-process caller) runs for each
job.  It builds the simulation the spec describes, runs it in chunks
(reporting progress between chunks), and reduces the final state to the
JSON-safe record the cache stores: thermodynamic endpoints plus a
SHA-256 state digest for bitwise comparisons.

Jobs with ``workers > 1`` run on the shared-memory parallel engine
*under the PR-4 recovery supervisor*: a
:class:`~repro.reliability.ResilientRunner` over a throwaway
:class:`~repro.reliability.CheckpointManager`, so an engine worker
killed mid-job (by a real fault or an injected
:class:`~repro.reliability.FaultPlan`) is respawned from the latest
checkpoint and the job still completes — bitwise-identical to an
uninterrupted run, which is what makes fault plans cache-key-neutral.
"""

from __future__ import annotations

import tempfile
import time
from typing import Callable

from repro.md import RunConfig
from repro.md.kernels import backend_spec, get_backend
from repro.reliability.certify import DigestRecorder
from repro.service.spec import JobResult, JobSpec, state_digest

__all__ = ["execute_job"]

#: Steps between progress callbacks (and recovery-supervisor chunks).
PROGRESS_CHUNK_FRACTION = 10


def _build_simulation(spec: JobSpec):
    """Build (and precision/backend-configure) the spec's simulation."""
    if spec.deck is not None:
        from repro.md.deck import parse_deck

        deck = parse_deck(spec.deck)
        sim = deck.simulation
        steps = deck.run_steps if spec.steps is None else int(spec.steps)
    else:
        from repro.suite import get_benchmark

        build = get_benchmark(spec.benchmark).build
        kwargs = {} if spec.seed is None else {"seed": int(spec.seed)}
        sim = build(int(spec.n_atoms), **kwargs)
        steps = int(spec.steps)
    sim.set_precision(spec.precision)
    sim.set_backend(backend_spec(get_backend(spec.backend)))
    return sim, steps


def execute_job(
    spec: JobSpec,
    *,
    progress: Callable[[int, int], None] | None = None,
    worker_id: int = -1,
) -> JobResult:
    """Run one job to completion and return its cacheable result.

    ``progress(done_steps, total_steps)`` is invoked after every chunk
    (about ``PROGRESS_CHUNK_FRACTION`` times per job, at least once).
    """
    payload = spec.canonical_payload()
    tick = time.perf_counter()
    sim, steps = _build_simulation(spec)
    chunk = max(1, steps // PROGRESS_CHUNK_FRACTION)
    # The digest cadence is a pure function of the spec (the chunk
    # size), so any route to the same spec — direct call, pool worker,
    # spool ticket — produces the identical chain, head included.
    digest = DigestRecorder(every=chunk)
    recovery_events = 0
    try:
        if spec.workers > 1:
            recovery_events = _run_parallel(
                spec, sim, steps, chunk, progress, digest
            )
        else:
            done = 0
            while done < steps:
                n = min(chunk, steps - done)
                sim.run(RunConfig(steps=n, digest=digest))
                done += n
                if progress is not None:
                    progress(done, steps)
        digest.finalize(sim)
        wall = time.perf_counter() - tick
        return JobResult(
            key=spec.cache_key(),
            benchmark=spec.benchmark,
            n_atoms=int(sim.system.n_atoms),
            steps=steps,
            seed=spec.effective_seed(),
            precision=payload["precision"],
            backend=payload["backend"],
            backend_provider=payload["backend_provider"],
            total_energy=float(sim.total_energy()),
            potential_energy=float(sim.potential_energy),
            temperature=float(sim.system.temperature()),
            state_digest=state_digest(sim.system),
            wall_seconds=wall,
            ts_per_s=steps / wall if wall > 0 else 0.0,
            worker_id=int(worker_id),
            engine_workers=int(spec.workers),
            recovery_events=recovery_events,
            tag=spec.tag,
            digest_head=digest.chain.head,
            digest_every=digest.every,
            digest_chain=[e.to_json() for e in digest.chain.entries],
            spec_json=spec.to_json(),
        )
    finally:
        sim.close()


def _run_parallel(spec: JobSpec, sim, steps, chunk, progress, digest) -> int:
    """Drive the job on the parallel engine under crash recovery."""
    from repro.parallel.engine import ParallelForceExecutor
    from repro.reliability import CheckpointManager, FaultPlan, ResilientRunner

    plan = FaultPlan.parse(spec.fault_plan) if spec.fault_plan else None
    executor = ParallelForceExecutor(
        int(spec.workers),
        quasi_2d=(spec.benchmark == "chute"),
        fault_plan=plan,
        precision=spec.precision,
    )
    sim.force_executor = executor
    executor.bind(sim)
    with tempfile.TemporaryDirectory(prefix="repro-job-ckpt-") as tmp:
        manager = CheckpointManager(
            tmp, every=int(spec.checkpoint_every), fault_plan=plan
        )
        runner = ResilientRunner(sim, manager, digest=digest)
        done = 0
        while done < steps:
            n = min(chunk, steps - done)
            runner.run(n)
            done += n
            if progress is not None:
                progress(done, steps)
        return len(runner.events)
