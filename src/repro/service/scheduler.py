"""Bounded-pool batch scheduler with content-addressed dedup.

:class:`BatchService` is the in-process heart of ``python -m repro
serve``: callers submit :class:`~repro.service.spec.JobSpec`\\ s from
any thread and get back :class:`Job` handles; a single scheduler
thread owns all dispatch, result collection and worker liveness, so
there is exactly one writer of scheduling state and no lock ordering
to get wrong.

Submission resolves in one of three ways, checked in order:

1. **cache hit** — the spec's content address is already stored; the
   handle completes immediately with a ``cached=True`` copy and no
   worker is touched;
2. **in-flight coalesce** — an identical spec is already queued or
   running; the *same* handle is returned and both submitters wait on
   the one execution (``service_dedup_hits_total``);
3. **enqueue** — a fresh address enters the pending queue and is
   dispatched to the first idle worker.

Worker death is survived at two levels: *inside* a job, the PR-4
``ResilientRunner`` respawns engine workers; if a **pool** worker
itself dies mid-job, the scheduler's liveness sweep respawns the
process and requeues exactly the job it held (bounded by
``max_requeues``, then the job fails loudly).

Queue depth, running count, completions, dedup hits, per-job wall
time and queue latency all flow through one
:class:`~repro.observability.metrics.MetricsRegistry` — the same
registry shape every other subsystem reports into.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque

from repro.observability.metrics import MetricsRegistry
from repro.service.cache import ResultCache
from repro.service.pool import WorkerPool
from repro.service.spec import JobResult, JobSpec

__all__ = ["BatchService", "Job", "JobFailedError", "ServiceClosedError"]


class JobFailedError(RuntimeError):
    """The job's execution failed (worker traceback in ``args[0]``)."""


class ServiceClosedError(RuntimeError):
    """Submission was attempted after drain/close began."""


class Job:
    """Handle for one submitted spec; shared by coalesced submitters."""

    def __init__(self, job_id: str, spec: JobSpec, key: str):
        self.id = job_id
        self.spec = spec
        self.key = key
        self.status = "pending"  # pending|running|done|failed
        self.progress = (0, spec.steps or 0)
        #: Number of submissions answered by this one execution.
        self.submitters = 1
        self.requeues = 0
        self._result: JobResult | None = None
        self._error: str | None = None
        self._done = threading.Event()
        self.submitted_at = time.perf_counter()
        self.started_at: float | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> JobResult:
        """Block until the job finishes; raise if it failed."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.id} not done after {timeout}s")
        if self._error is not None:
            raise JobFailedError(self._error)
        assert self._result is not None
        return self._result

    # scheduler-side completion hooks -----------------------------------
    def _finish(self, result: JobResult) -> None:
        self._result = result
        self.status = "done"
        self._done.set()

    def _fail(self, error: str) -> None:
        self._error = error
        self.status = "failed"
        self._done.set()


class BatchService:
    """Accept many jobs; run each unique one once on a bounded pool.

    Parameters
    ----------
    n_workers:
        Pool size (concurrent jobs).
    cache:
        A prebuilt :class:`ResultCache`, or ``None`` to create one.
    cache_dir / max_cache_entries:
        Disk layer / memory bound for the created cache (ignored when
        ``cache`` is given).
    metrics:
        Shared metrics registry; one is created if omitted.
    max_requeues:
        How many pool-worker deaths one job survives before failing.
    """

    def __init__(
        self,
        n_workers: int = 2,
        *,
        cache: ResultCache | None = None,
        cache_dir=None,
        max_cache_entries: int = 1024,
        metrics: MetricsRegistry | None = None,
        max_requeues: int = 2,
        start_method: str | None = None,
        poll_seconds: float = 0.05,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = cache if cache is not None else ResultCache(
            max_cache_entries, directory=cache_dir, metrics=self.metrics
        )
        self.max_requeues = int(max_requeues)
        self._poll = float(poll_seconds)
        self._pool = WorkerPool(n_workers, start_method=start_method)
        self._lock = threading.Lock()
        self._pending: deque[Job] = deque()
        #: content address -> live Job (pending or running): the dedup map.
        self._inflight: dict[str, Job] = {}
        #: worker id -> Job it is currently executing.
        self._assigned: dict[int, Job] = {}
        #: job id -> *live* Job (pending or running).  Completed jobs
        #: are dropped here — submitters hold their own handles — so a
        #: long-running service does not grow without bound.
        self.jobs: dict[str, Job] = {}
        self._jobs_seen = 0
        self._accepting = True
        self._stop = threading.Event()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="repro-service-scheduler",
            daemon=True,
        )
        self._scheduler.start()

    # ------------------------------------------------------------------
    # Submission (any thread)
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Submit one spec; returns a handle (possibly already done)."""
        key = spec.cache_key()
        with self._lock:
            if not self._accepting:
                raise ServiceClosedError("service is draining/closed")
            self.metrics.counter("service_jobs_submitted_total").inc()
            cached = self.cache.get(key)
            if cached is not None:
                self._jobs_seen += 1
                job = Job(f"job-{uuid.uuid4().hex[:8]}", spec, key)
                served = JobResult.from_json(cached.to_json())
                served.cached = True
                job._finish(served)
                self.metrics.counter("service_jobs_completed_total").inc()
                return job
            running = self._inflight.get(key)
            if running is not None:
                running.submitters += 1
                self.metrics.counter("service_dedup_hits_total").inc()
                return running
            if self._pool.usable_slots() == 0:
                raise ServiceClosedError(
                    "no usable pool workers: every slot was retired after"
                    " repeated boot failures"
                )
            self._jobs_seen += 1
            job = Job(f"job-{uuid.uuid4().hex[:8]}", spec, key)
            self._inflight[key] = job
            self.jobs[job.id] = job
            self._pending.append(job)
            self._gauge_depths()
            return job

    def map(self, specs, timeout: float | None = None) -> list[JobResult]:
        """Submit a batch and block for all results, in input order."""
        handles = [self.submit(spec) for spec in specs]
        return [job.result(timeout) for job in handles]

    # ------------------------------------------------------------------
    # Scheduler thread: dispatch + collection + liveness
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            self._dispatch()
            event = self._pool.next_event(timeout=self._poll)
            if event is not None:
                self._handle_event(event)
                # Drain whatever else is ready before the next sweep.
                while (event := self._pool.next_event(timeout=0.0)):
                    self._handle_event(event)
            self._sweep_liveness()

    def _dispatch(self) -> None:
        with self._lock:
            for worker_id in range(self._pool.n_workers):
                if not self._pending:
                    break
                if worker_id in self._assigned:
                    continue
                if not self._pool.is_alive(worker_id):
                    continue
                job = self._pending.popleft()
                self._assigned[worker_id] = job
                job.status = "running"
                job.started_at = time.perf_counter()
                self.metrics.histogram("service_queue_wait_seconds").observe(
                    job.started_at - job.submitted_at
                )
                self._pool.assign(worker_id, job.id, job.spec)
            self._gauge_depths()

    def _handle_event(self, event: dict) -> None:
        kind = event.get("kind")
        worker_id = event.get("worker", -1)
        with self._lock:
            job = self._assigned.get(worker_id)
        if job is None or job.id != event.get("job"):
            return  # stale event from a pre-respawn incarnation
        if kind == "progress":
            job.progress = (event["done"], event["total"])
            self.metrics.counter("service_progress_events_total").inc()
            return
        if kind == "started":
            return
        if kind == "result":
            result = JobResult.from_json(event["result"])
            self.cache.put(job.key, result)
            wall = time.perf_counter() - (job.started_at or job.submitted_at)
            self.metrics.histogram("service_job_seconds").observe(wall)
            self.metrics.counter("service_jobs_completed_total").inc(
                job.submitters
            )
            # Complete the handle *before* retiring: drain() unblocks
            # on retire, and its callers must then see done() handles.
            job._finish(result)
            self._retire(worker_id, job)
        elif kind == "error":
            self.metrics.counter("service_jobs_failed_total").inc()
            job._fail(event.get("error", "unknown worker error"))
            self._retire(worker_id, job)

    def _retire(self, worker_id: int, job: Job) -> None:
        with self._lock:
            self._assigned.pop(worker_id, None)
            self._inflight.pop(job.key, None)
            self.jobs.pop(job.id, None)
            self._gauge_depths()

    def _sweep_liveness(self) -> None:
        """Respawn dead pool workers; requeue the jobs they held.

        The held job stays in ``_assigned`` until its fate (requeue or
        fail) is decided, so ``pending()`` never reads 0 mid-respawn —
        a drain racing a worker death must keep waiting.  Safe because
        the scheduler thread is the only event consumer: no result for
        this job can be processed while the sweep holds it.
        """
        for worker_id in range(self._pool.n_workers):
            if self._pool.retired(worker_id) or self._pool.is_alive(worker_id):
                continue
            with self._lock:
                job = self._assigned.get(worker_id)
            if self._pool.respawn(worker_id):
                self.metrics.counter("service_worker_respawns_total").inc()
            else:
                # Slot retired: the worker kept dying before it could
                # boot.  If no slot remains, nothing will ever execute
                # again — fail the whole queue loudly rather than hang.
                self.metrics.counter("service_worker_slots_retired_total").inc()
                if self._pool.usable_slots() == 0:
                    self._fail_all_jobs(
                        "every pool worker slot was retired after repeated"
                        " boot failures (workers died before their ready"
                        " handshake); classic cause: the host __main__ is"
                        " not importable under the spawn start method"
                    )
                    continue
            if job is None:
                continue
            job.requeues += 1
            if job.requeues > self.max_requeues:
                self.metrics.counter("service_jobs_failed_total").inc()
                job._fail(
                    f"pool worker died {job.requeues} times running {job.id}"
                )
                with self._lock:
                    self._assigned.pop(worker_id, None)
                    self._inflight.pop(job.key, None)
                    self.jobs.pop(job.id, None)
                    self._gauge_depths()
                continue
            with self._lock:
                self._assigned.pop(worker_id, None)
                job.status = "pending"
                self._pending.appendleft(job)  # retries jump the queue
                self._gauge_depths()

    def _fail_all_jobs(self, reason: str) -> None:
        """Scheduler thread only: fail every queued and assigned job."""
        with self._lock:
            doomed = list(self._pending) + list(self._assigned.values())
        for job in doomed:
            self.metrics.counter("service_jobs_failed_total").inc()
            job._fail(reason)
        with self._lock:
            self._pending.clear()
            self._assigned.clear()
            self._inflight.clear()
            for job in doomed:
                self.jobs.pop(job.id, None)
            self._gauge_depths()

    def _gauge_depths(self) -> None:
        """Lock held: refresh the queue-shape gauges."""
        self.metrics.gauge("service_queue_depth").set(len(self._pending))
        self.metrics.gauge("service_jobs_running").set(len(self._assigned))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def pending(self) -> int:
        with self._lock:
            return len(self._pending) + len(self._assigned)

    def wait_ready(self, timeout: float = 120.0) -> bool:
        """Block until every pool worker has booted and checked in.

        Spawned workers pay a fresh-interpreter start before they can
        take work; throughput measurements call this first so the
        timed window starts from a warm pool.  Submission does not
        require it — jobs queue fine against a booting pool.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._pool.ready_count() >= self._pool.n_workers:
                return True
            time.sleep(self._poll)
        return False

    def drain(self, timeout: float = 300.0) -> bool:
        """Stop accepting work; wait for in-flight jobs to finish."""
        with self._lock:
            self._accepting = False
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.pending() == 0:
                return True
            time.sleep(self._poll)
        return False

    def close(self, *, drain: bool = True, timeout: float = 300.0) -> None:
        """Shut the service down (optionally draining in-flight work)."""
        if drain:
            self.drain(timeout)
        else:
            with self._lock:
                self._accepting = False
        self._stop.set()
        self._scheduler.join(timeout=10.0)
        self._pool.close()

    def __enter__(self) -> "BatchService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """One JSON-safe snapshot of queue + cache + pool state."""
        with self._lock:
            queued, running = len(self._pending), len(self._assigned)
        return {
            "queued": queued,
            "running": running,
            "workers": self._pool.n_workers,
            "worker_respawns": self._pool.spawned - self._pool.n_workers,
            "jobs_seen": self._jobs_seen,
            "jobs_live": len(self.jobs),
            "cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
        }
