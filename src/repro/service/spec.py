"""Job descriptions and their content addresses.

A :class:`JobSpec` is everything the batch service needs to run one
simulation: *what* to simulate (a suite benchmark name or a raw LAMMPS
deck text), *how long* (steps), and the result-determining knobs (atom
count, seed, precision mode, kernel backend).  Its
:meth:`~JobSpec.cache_key` is a SHA-256 over a canonical JSON payload
of exactly those fields — the content address under which the service
caches, dedupes and serves results.

Two submissions share a key **iff** the engine's determinism contracts
make their results interchangeable, so the key deliberately covers:

* the deck identity — the benchmark name + atom count + seed, or the
  SHA-256 of the literal deck text (content, not path);
* the step count;
* the precision mode (parsed, so ``"DOUBLE"`` and ``"double"`` agree);
* the *resolved* kernel backend and — for the compiled backend — its
  native provider kind (``numba`` vs ``cc``), since an ``auto`` or
  fallen-back request must land on the same address as an explicit one.

and deliberately excludes execution *strategy* that the engine's
contracts make result-neutral:

* ``workers`` — the parallel engine holds force parity with the serial
  engine within the per-precision tolerance (PR 3's contract), so an
  N-worker run answers a serial submission of the same physics (the
  trajectories are physically interchangeable, though not bit-equal
  across *different* worker counts — summation order differs);
* ``fault_plan`` / ``checkpoint_every`` — at a fixed worker count,
  recovered runs finish bitwise-identical to uninterrupted ones
  (PR 4's contract);
* ``tag`` — a client-side label.

The payload is serialized with ``sort_keys=True`` and no incidental
state (paths, times, object ids), so the address is stable across
processes, interpreter sessions and dict insertion orders.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.md.precision import parse_precision

__all__ = ["JobSpec", "JobResult", "state_digest"]

#: Canonical-payload schema tag; bump when the key derivation changes
#: (a bump invalidates every cached address, by construction).
SPEC_SCHEMA = "repro-job/1"


def _resolved_backend(spec: "str | None") -> tuple[str, str | None]:
    """Registry name + native provider kind the spec actually runs on.

    ``None``/``"auto"``/unavailable-optional requests all resolve
    through :func:`repro.md.kernels.get_backend`, so the address names
    the backend that will *execute*, not the one that was asked for.
    """
    from repro.md.kernels import backend_spec, get_backend

    name = backend_spec(get_backend(spec))
    provider = None
    if name == "compiled":
        from repro.md.kernels.compiled import provider_info

        info = provider_info()
        provider = info.get("kind") if info else None
    return name, provider


@dataclass(frozen=True)
class JobSpec:
    """One batch-service job: a RunConfig-shaped simulation request.

    Parameters
    ----------
    benchmark:
        Suite benchmark name (``lj``, ``eam``, ...); mutually exclusive
        with ``deck``.
    deck:
        Literal LAMMPS deck text (the supported command subset of
        :mod:`repro.md.deck`); content-hashed for the cache key.
    n_atoms:
        Target atom count for suite builders (ignored for decks, whose
        geometry is in the text).
    steps:
        Timesteps to run.  ``None`` with a deck uses the deck's own
        ``run`` count.
    seed:
        Builder seed; ``None`` keeps the benchmark's default (which is
        part of the deck identity either way — the key records the
        *effective* seed).
    precision:
        Precision mode name (``single``/``mixed``/``double``).
    backend:
        Kernel-backend request (registry name, ``auto``, or ``None``
        for the environment default); the *resolved* backend is keyed.
    workers:
        Engine worker processes for this job (1 = serial executor).
        Execution strategy — not part of the cache key.
    fault_plan:
        Optional fault-injection spec string (``kill:1:17``-style, see
        :class:`repro.reliability.FaultPlan`) applied to the job's
        worker pool; recovery makes it result-neutral, so it is not
        keyed.
    checkpoint_every:
        Periodic checkpoint cadence inside the job (0 = only the
        supervisor's baseline checkpoint when recovery is active).
    tag:
        Free-form client label carried through to the result.
    """

    benchmark: str | None = None
    deck: str | None = None
    n_atoms: int = 500
    steps: int | None = 100
    seed: int | None = None
    precision: str = "double"
    backend: str | None = None
    workers: int = 1
    fault_plan: str | None = None
    checkpoint_every: int = 0
    tag: str | None = None

    def __post_init__(self) -> None:
        if (self.benchmark is None) == (self.deck is None):
            raise ValueError(
                "exactly one of benchmark= or deck= must be given"
            )
        if self.steps is None and self.deck is None:
            raise ValueError("steps=None is only valid for deck jobs")
        if self.steps is not None and int(self.steps) <= 0:
            raise ValueError("steps must be positive")
        if int(self.workers) < 1:
            raise ValueError("workers must be >= 1")
        # Fail fast on typos before the job ever reaches a worker.
        parse_precision(self.precision)
        if self.benchmark is not None:
            from repro.suite import get_benchmark

            get_benchmark(self.benchmark)  # raises KeyError on unknowns

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def effective_seed(self) -> int | None:
        """The seed the builder will actually use (default-resolved)."""
        if self.seed is not None:
            return int(self.seed)
        if self.benchmark is None:
            return None  # decks carry their seeds in the text
        import inspect

        from repro.suite import get_benchmark

        build = get_benchmark(self.benchmark).build
        parameter = inspect.signature(build).parameters.get("seed")
        if parameter is None or parameter.default is inspect.Parameter.empty:
            return None
        return int(parameter.default)

    def canonical_payload(self) -> dict[str, Any]:
        """The JSON-safe dict the cache key is derived from.

        Only result-determining fields appear; every value is a plain
        scalar so ``json.dumps(sort_keys=True)`` yields one canonical
        byte string regardless of construction order or process.
        """
        name, provider = _resolved_backend(self.backend)
        return {
            "schema": SPEC_SCHEMA,
            "benchmark": self.benchmark,
            "deck_sha256": (
                None
                if self.deck is None
                else hashlib.sha256(self.deck.encode()).hexdigest()
            ),
            "n_atoms": None if self.deck is not None else int(self.n_atoms),
            "steps": None if self.steps is None else int(self.steps),
            "seed": self.effective_seed(),
            "precision": parse_precision(self.precision).value,
            "backend": name,
            "backend_provider": provider,
        }

    def cache_key(self) -> str:
        """SHA-256 content address of this job's result."""
        payload = json.dumps(
            self.canonical_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------------------------
    # Wire format (spool files, worker payloads)
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """Wire form for spool files and worker payloads.

        A ``None`` may only be elided when the field's default is also
        ``None`` — ``steps`` defaults to 100, so ``steps=None`` (a deck
        job using the deck's own run count) must travel explicitly or
        ``from_json`` would resurrect it as 100 and the worker would
        run the wrong job under the submit-side cache key.
        """
        fields = type(self).__dataclass_fields__
        return {
            k: v
            for k, v in asdict(self).items()
            if not (v is None and fields[k].default is None)
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown JobSpec fields: {sorted(unknown)}")
        return cls(**data)


def state_digest(system) -> str:
    """SHA-256 over the final dynamical state, for bitwise comparisons.

    Hashes the raw position and velocity bytes (in storage dtype), so
    two runs agree iff they finished bit-for-bit identical — the
    currency of the engine's determinism and recovery contracts.
    """
    import numpy as np

    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(system.positions).tobytes())
    digest.update(np.ascontiguousarray(system.velocities).tobytes())
    return digest.hexdigest()


@dataclass
class JobResult:
    """What the service stores and serves for one content address."""

    key: str
    benchmark: str | None
    n_atoms: int
    steps: int
    seed: int | None
    precision: str
    backend: str
    #: Native provider kind when ``backend == "compiled"`` else None.
    backend_provider: str | None
    total_energy: float
    potential_energy: float
    temperature: float
    #: SHA-256 of the final positions+velocities bytes.
    state_digest: str
    wall_seconds: float
    ts_per_s: float
    #: Pool worker that executed the job (-1 for in-process execution).
    worker_id: int = -1
    #: Engine workers the job ran on (1 = serial executor).
    engine_workers: int = 1
    #: Recovery events (respawns/degradations) during the run.
    recovery_events: int = 0
    #: True when this result was served from the cache, not executed.
    #: Always False in the stored record; the service sets it on the
    #: *served copy* so clients can tell a hit from a fresh run.
    cached: bool = False
    tag: str | None = None
    #: Head of the run's hash-chained trajectory digest chain (see
    #: ``docs/REPRODUCIBILITY.md``); None for legacy records.
    digest_head: str | None = None
    #: Cadence (steps) the digest chain was recorded at.
    digest_every: int = 0
    #: The full chain records (JSON-safe), so ``repro certify --cache``
    #: can re-verify linkage and replay without the original run dir.
    digest_chain: list = field(default_factory=list)
    #: Wire form of the spec that produced this result, kept so an
    #: audit can recompute the content address and re-execute the job.
    spec_json: dict | None = None
    extra: dict = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "JobResult":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})
