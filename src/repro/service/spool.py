"""File-spool transport between ``repro submit`` and ``repro serve``.

The service core (:class:`~repro.service.scheduler.BatchService`) is
in-process; this module gives it a cross-process front door with zero
dependencies beyond the filesystem — the same judgment call the rest
of the repo makes (JSONL metrics, file checkpoints).  A spool
directory holds four subdirectories:

``pending/``
    One ``<ticket>.json`` per submitted job, written atomically
    (temp name + ``os.replace``) so the server never reads a partial
    spec.
``claimed/``
    The server *claims* a pending file by renaming it here — rename is
    atomic, so two servers polling one spool can never double-run a
    ticket.
``tickets/``
    The server's reply: ``<ticket>.json`` with the full job result (or
    the failure), which the submitting client polls for.
``cache/``
    The service's disk result cache — content-addressed, shared across
    server restarts, so a resubmitted config is answered without
    touching a worker even by a *fresh* server process.

Graceful drain: on SIGTERM/SIGINT the server stops claiming, lets
in-flight jobs finish, answers their tickets, and exits; unclaimed
``pending/`` files survive untouched for the next server.

Claimed files are deleted once their ticket is answered, so anything
left in ``claimed/`` is a job that never produced a reply.  Two paths
recover those instead of losing them: a starting server moves
unanswered claims back to ``pending/`` (a SIGKILLed predecessor's
in-flight work reruns instead of silently timing out the client), and
a draining server whose drain *times out* returns its still-open
claims the same way.  The recovery assumes claims found at startup are
orphaned — with several servers deliberately sharing one spool, a new
server can requeue a ticket a live sibling is still running; results
are content-cached, so the cost is a wasted execution, never a wrong
answer.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import uuid
from pathlib import Path

from repro.service.scheduler import BatchService, Job
from repro.service.spec import JobResult, JobSpec

__all__ = ["SpoolClient", "SpoolServer", "spool_layout"]


def spool_layout(spool_dir: str | Path) -> dict[str, Path]:
    """Create (if needed) and return the spool's subdirectories."""
    root = Path(spool_dir)
    layout = {
        name: root / name for name in ("pending", "claimed", "tickets", "cache")
    }
    for path in layout.values():
        path.mkdir(parents=True, exist_ok=True)
    return layout


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    os.replace(tmp, path)


class SpoolClient:
    """Submit specs into a spool and wait for their tickets."""

    def __init__(self, spool_dir: str | Path):
        self.layout = spool_layout(spool_dir)

    def submit(self, spec: JobSpec) -> str:
        """Drop one job into ``pending/``; returns the ticket id."""
        ticket = uuid.uuid4().hex
        _atomic_write_json(
            self.layout["pending"] / f"{ticket}.json",
            {"ticket": ticket, "spec": spec.to_json()},
        )
        return ticket

    def wait(
        self, ticket: str, *, timeout: float = 600.0, poll: float = 0.1
    ) -> JobResult:
        """Block until the server answers ``ticket``; raise on failure."""
        path = self.layout["tickets"] / f"{ticket}.json"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if path.exists():
                try:
                    reply = json.loads(path.read_text())
                except json.JSONDecodeError:
                    time.sleep(poll)  # raced a partially-visible reply
                    continue
                if reply.get("status") == "done":
                    return JobResult.from_json(reply["result"])
                raise RuntimeError(
                    f"ticket {ticket} failed: {reply.get('error', '?')}"
                )
            time.sleep(poll)
        raise TimeoutError(f"no reply for ticket {ticket} after {timeout}s")

    def run(self, spec: JobSpec, *, timeout: float = 600.0) -> JobResult:
        return self.wait(self.submit(spec), timeout=timeout)


class SpoolServer:
    """Poll a spool directory and feed its jobs to a BatchService."""

    def __init__(
        self,
        spool_dir: str | Path,
        service: BatchService,
        *,
        poll: float = 0.1,
    ):
        self.layout = spool_layout(spool_dir)
        self.service = service
        self.poll = float(poll)
        #: ticket id -> Job handle still awaiting completion.
        self._open: dict[str, Job] = {}
        self.answered = 0
        self._stop = threading.Event()
        self._recover_claimed()

    # ------------------------------------------------------------------
    def request_stop(self, *_args) -> None:
        """Signal-safe: ask the serve loop to drain and exit."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        signal.signal(signal.SIGTERM, self.request_stop)
        signal.signal(signal.SIGINT, self.request_stop)

    # ------------------------------------------------------------------
    def _recover_claimed(self) -> None:
        """Put orphaned claims back into circulation.

        A claim whose ticket was answered is a leftover to delete; one
        without an answer belonged to a server that died (or drained
        out) mid-job — return it to ``pending/`` so it runs again
        rather than leaving its client to time out.
        """
        for path in sorted(self.layout["claimed"].glob("*.json")):
            try:
                if (self.layout["tickets"] / path.name).exists():
                    path.unlink()
                else:
                    os.replace(path, self.layout["pending"] / path.name)
            except FileNotFoundError:
                continue  # raced another recovering server

    def _claim_pending(self) -> None:
        for path in sorted(self.layout["pending"].glob("*.json")):
            claimed = self.layout["claimed"] / path.name
            try:
                os.replace(path, claimed)  # atomic claim
            except FileNotFoundError:
                continue  # another server got it first
            try:
                request = json.loads(claimed.read_text())
                ticket = request["ticket"]
                spec = JobSpec.from_json(request["spec"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as e:
                ticket = path.stem
                self._answer(ticket, error=f"bad request: {e}")
                continue
            try:
                self._open[ticket] = self.service.submit(spec)
            except Exception as e:  # noqa: BLE001 - report, keep serving
                self._answer(ticket, error=str(e))

    def _answer_done(self) -> None:
        for ticket in [t for t, job in self._open.items() if job.done()]:
            job = self._open.pop(ticket)
            try:
                result = job.result(timeout=0)
            except Exception as e:  # noqa: BLE001 - failure goes in reply
                self._answer(ticket, error=str(e))
                continue
            self._answer(ticket, result=result)

    def _answer(self, ticket: str, *, result=None, error=None) -> None:
        reply: dict = {"ticket": ticket}
        if error is None:
            reply["status"] = "done"
            reply["result"] = result.to_json()
        else:
            reply["status"] = "failed"
            reply["error"] = str(error)
        _atomic_write_json(self.layout["tickets"] / f"{ticket}.json", reply)
        claimed = self.layout["claimed"] / f"{ticket}.json"
        try:
            claimed.unlink()  # answered: the claim is spent
        except FileNotFoundError:
            pass
        self.answered += 1

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One poll cycle: claim new work, answer finished work."""
        if not self._stop.is_set():
            self._claim_pending()
        self._answer_done()

    def serve_forever(self, *, max_seconds: float | None = None) -> None:
        """Run until a stop signal (then drain in-flight and answer)."""
        deadline = None if max_seconds is None else (
            time.monotonic() + max_seconds
        )
        while not self._stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            self.step()
            time.sleep(self.poll)
        # Drain: no new claims; finish and answer what is in flight.
        self.service.drain()
        self._answer_done()
        # Drain timed out with jobs still unfinished: hand their claims
        # back to pending/ so the next server completes them instead of
        # the tickets silently dying with this process.
        for ticket in list(self._open):
            self._open.pop(ticket)
            claimed = self.layout["claimed"] / f"{ticket}.json"
            try:
                os.replace(claimed, self.layout["pending"] / claimed.name)
            except FileNotFoundError:
                pass
