"""Ablation and extension studies beyond the paper's figures.

Each module isolates one design choice the paper (or its setup) fixes,
and quantifies it with the same two-layer machinery — the functional
engine where the effect is physical, the performance model where it is
architectural:

* :mod:`repro.studies.skin` — the neighbor-skin trade-off behind
  Table 2's per-benchmark skin values;
* :mod:`repro.studies.newton` — what Chute loses by not exploiting
  Newton's third law (Section 3's footnote);
* :mod:`repro.studies.gpu_ranks` — the ranks-per-GPU tuning the paper
  did empirically ("no more than 48 total MPI processes were
  beneficial", Section 6.2);
* :mod:`repro.studies.weak_scaling` — the weak-scaling view prior work
  focused on, for contrast with the paper's strong scaling;
* :mod:`repro.studies.fft_precision` — the ``-DFFT_SINGLE`` build flag
  (Section 4.3) as an ablation.
"""

from repro.studies.fft_precision import fft_precision_study
from repro.studies.gpu_ranks import gpu_rank_tuning_study
from repro.studies.newton import newton_ablation
from repro.studies.skin import optimal_skin, skin_sweep_functional, skin_sweep_model
from repro.studies.takeaways import (
    commodity_fleet_gap,
    dsa_gap,
    project_cpu_balance,
    project_gpu_improvements,
)
from repro.studies.weak_scaling import weak_scaling_study

__all__ = [
    "skin_sweep_functional",
    "skin_sweep_model",
    "optimal_skin",
    "project_gpu_improvements",
    "project_cpu_balance",
    "dsa_gap",
    "commodity_fleet_gap",
    "newton_ablation",
    "gpu_rank_tuning_study",
    "weak_scaling_study",
    "fft_precision_study",
]
