"""``-DFFT_SINGLE`` ablation: single- vs double-precision FFTs.

Section 4.3 lists the build flags: the authors compile LAMMPS with
``-DFFT_MKL -DFFT_SINGLE``.  This study quantifies what that flag buys
by re-running the Rhodopsin error-threshold sweep with double-precision
FFTs: the FFT flops cost ~1.6x more and the transpose (and, on the GPU
node, PCIe) traffic doubles — negligible at the 1e-4 baseline, sizable
at 1e-7 where the grid dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.parallel.executor import simulate_cpu_run
from repro.perfmodel.costs import CpuCostCoefficients, CpuCostModel

__all__ = ["FftPrecisionPoint", "fft_precision_study"]

#: Double-precision FFT arithmetic/bandwidth penalty on the host.
FFT_DOUBLE_FACTOR = 1.6


@dataclass(frozen=True)
class FftPrecisionPoint:
    kspace_error: float
    ts_fft_single: float
    ts_fft_double: float

    @property
    def slowdown(self) -> float:
        return self.ts_fft_single / self.ts_fft_double


def fft_precision_study(
    n_atoms: int = 2_048_000,
    n_ranks: int = 64,
    thresholds: tuple[float, ...] = (1e-4, 1e-5, 1e-6, 1e-7),
    seed: int = 0,
) -> list[FftPrecisionPoint]:
    """Rhodopsin with single (the paper's build) vs double FFTs."""
    base_coeffs = CpuCostCoefficients()
    double_coeffs = replace(
        base_coeffs,
        fft_per_point_log=base_coeffs.fft_per_point_log * FFT_DOUBLE_FACTOR,
    )
    points = []
    for threshold in thresholds:
        single = simulate_cpu_run(
            "rhodo",
            n_atoms,
            n_ranks,
            kspace_error=threshold,
            seed=seed,
            cost_model=CpuCostModel(base_coeffs),
        )
        double = simulate_cpu_run(
            "rhodo",
            n_atoms,
            n_ranks,
            kspace_error=threshold,
            seed=seed,
            cost_model=CpuCostModel(double_coeffs),
        )
        points.append(
            FftPrecisionPoint(
                kspace_error=threshold,
                ts_fft_single=single.ts_per_s,
                ts_fft_double=double.ts_per_s,
            )
        )
    return points
