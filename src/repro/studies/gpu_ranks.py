"""Ranks-per-GPU tuning study (the paper's empirical 48-rank finding).

Section 6.2: "We empirically tested different numbers of MPI processes
per device for different system sizes, and in any case no more than 48
total MPI processes were beneficial, despite having 52 available
hardware cores."  This study sweeps the total-rank budget of the GPU
executor and locates the knee: more ranks raise device utilization
(smaller subdomains time-multiplex the GPU and parallelize the host
work) until serialized kernel launches and MPI overhead win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.executor import GpuModelConfig, simulate_gpu_run
from repro.platforms.instances import GPU_INSTANCE

__all__ = ["RankTuningPoint", "gpu_rank_tuning_study", "best_total_ranks"]


@dataclass(frozen=True)
class RankTuningPoint:
    total_ranks: int
    ranks_per_gpu: int
    ts_per_s: float
    gpu_utilization: float


def gpu_rank_tuning_study(
    benchmark: str = "lj",
    n_atoms: int = 2_048_000,
    n_gpus: int = 8,
    rank_budgets: tuple[int, ...] = (8, 16, 24, 32, 40, 48, 52),
) -> list[RankTuningPoint]:
    """Sweep the total MPI-rank budget on the 8-GPU node."""
    points = []
    for budget in rank_budgets:
        config = GpuModelConfig(max_total_ranks=budget)
        result = simulate_gpu_run(benchmark, n_atoms, n_gpus, config=config)
        points.append(
            RankTuningPoint(
                total_ranks=result.total_ranks,
                ranks_per_gpu=result.total_ranks // n_gpus,
                ts_per_s=result.ts_per_s,
                gpu_utilization=result.gpu_utilization,
            )
        )
    return points


def best_total_ranks(points: list[RankTuningPoint]) -> int:
    """The rank budget with the highest throughput."""
    if not points:
        raise ValueError("no tuning points supplied")
    return max(points, key=lambda p: p.ts_per_s).total_ranks


def verify_paper_claim(
    benchmarks: tuple[str, ...] = ("lj", "eam", "chain", "rhodo"),
    n_atoms: int = 2_048_000,
    n_gpus: int = 4,
) -> bool:
    """True if no benchmark benefits from more than 48 total ranks.

    Uses the full 52-core budget as the alternative, exactly the
    paper's comparison.  With 8 devices any budget rounds to a multiple
    of 8, so the 48-vs-52 contrast is evaluated on 4 devices, where 52
    ranks are actually placeable.
    """
    for bench in benchmarks:
        at_48 = simulate_gpu_run(
            bench, n_atoms, n_gpus, config=GpuModelConfig(max_total_ranks=48)
        )
        at_52 = simulate_gpu_run(
            bench, n_atoms, n_gpus, config=GpuModelConfig(max_total_ranks=52)
        )
        if at_52.ts_per_s > at_48.ts_per_s * 1.001:
            return False
    return True
