"""Newton's-third-law ablation for the Chute benchmark.

Section 3 singles Chute out: "Unlike all previous benchmarks, this
experiment does not leverage Newton's third law to reduce the number of
pairwise interactions to compute."  Turning Newton *on* halves the pair
work but adds the reverse (force) ghost exchange — the classic LAMMPS
``newton on/off`` trade-off.  This study evaluates both settings on the
model and reports the crossover behaviour: Newton-on wins at scale
(compute dominates), while the savings shrink for small, comm-bound
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.parallel.executor import CpuRunResult, simulate_cpu_run
from repro.perfmodel.workloads import get_workload, workloads

__all__ = ["NewtonComparison", "newton_ablation"]


@dataclass(frozen=True)
class NewtonComparison:
    """Newton off (the paper's setting) vs on, for one configuration."""

    n_atoms: int
    n_ranks: int
    ts_newton_off: float
    ts_newton_on: float

    @property
    def speedup_from_newton(self) -> float:
        return self.ts_newton_on / self.ts_newton_off


def _run_with_newton(
    benchmark: str, n_atoms: int, n_ranks: int, newton: bool, seed: int
) -> CpuRunResult:
    base = get_workload(benchmark)
    patched = replace(base, newton=newton)
    # Temporarily install the patched workload; the executor looks the
    # benchmark up by name.
    original = workloads[benchmark]
    workloads[benchmark] = patched
    try:
        return simulate_cpu_run(benchmark, n_atoms, n_ranks, seed=seed)
    finally:
        workloads[benchmark] = original


def newton_ablation(
    benchmark: str = "chute",
    sizes: tuple[int, ...] = (32_000, 2_048_000),
    rank_counts: tuple[int, ...] = (1, 64),
    seed: int = 0,
) -> list[NewtonComparison]:
    """Compare ``newton off`` (paper setting for Chute) against ``on``."""
    comparisons = []
    for n_atoms in sizes:
        for n_ranks in rank_counts:
            off = _run_with_newton(benchmark, n_atoms, n_ranks, False, seed)
            on = _run_with_newton(benchmark, n_atoms, n_ranks, True, seed)
            comparisons.append(
                NewtonComparison(
                    n_atoms=n_atoms,
                    n_ranks=n_ranks,
                    ts_newton_off=off.ts_per_s,
                    ts_newton_on=on.ts_per_s,
                )
            )
    return comparisons
