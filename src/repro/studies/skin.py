"""Neighbor-skin ablation: rebuild cadence vs per-step pair work.

Section 2 of the paper: "a larger skin distance requires checking more
particles for possible interactions at each timestep, but allows
rebuilding neighbor lists less often."  Table 2 fixes one skin per
benchmark; this study sweeps it.

Two views:

* :func:`skin_sweep_functional` — run the *real* engine and measure the
  rebuild cadence and stored-pair count directly;
* :func:`skin_sweep_model` — evaluate the cost model at production
  scale, deriving the rebuild cadence from kinetic theory
  (``rebuild ~ skin / (2 c v_rms dt)``) and the stored pairs from the
  ``(cutoff+skin)^3`` shell, to locate the optimum skin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.md.simulation import Simulation
from repro.perfmodel.costs import CpuCostModel
from repro.perfmodel.workloads import WorkloadParams, get_workload
from repro.suite import get_benchmark

__all__ = ["SkinPoint", "skin_sweep_functional", "skin_sweep_model"]

#: Peak/rms displacement ratio: the rebuild triggers on the *fastest*
#: atom crossing skin/2, not the average one.
_MAX_OVER_RMS = 1.8

#: Per-step cost of re-checking one stored pair against the cutoff
#: (every timestep masks the whole cutoff+skin list).  The global cost
#: model folds this into its calibrated pair constant at the Table 2
#: skin; the sweep needs it explicit to expose the trade-off.
_LIST_CHECK_PER_PAIR = 1.2e-9


@dataclass(frozen=True)
class SkinPoint:
    """One skin setting's measured (or modelled) consequences."""

    skin: float
    rebuild_every: float
    stored_pairs_per_atom: float
    #: Modelled per-step seconds (model sweep) or measured engine
    #: seconds per step (functional sweep).
    step_seconds: float


def skin_sweep_functional(
    benchmark: str = "lj",
    n_atoms: int = 400,
    skins: tuple[float, ...] = (0.1, 0.2, 0.3, 0.5, 0.8),
    n_steps: int = 150,
    seed: int = 11,
) -> list[SkinPoint]:
    """Measure the skin trade-off by actually running the engine."""
    points = []
    for skin in skins:
        sim: Simulation = get_benchmark(benchmark).build(n_atoms, seed=seed)
        sim.neighbor.skin = float(skin)
        sim.setup()
        sim.run(n_steps)
        stats = sim.neighbor.stats
        stored = stats.last_pairs / sim.system.n_atoms
        points.append(
            SkinPoint(
                skin=float(skin),
                rebuild_every=stats.rebuild_every,
                stored_pairs_per_atom=stored,
                step_seconds=sim.timers.total / n_steps,
            )
        )
    return points


def _rebuild_cadence(
    workload: WorkloadParams, skin: float, v_rms: float, dt: float
) -> float:
    """Kinetic-theory rebuild estimate: fastest atom crosses skin/2."""
    displacement_per_step = _MAX_OVER_RMS * v_rms * dt
    return max(1.0, 0.5 * skin / displacement_per_step)


def skin_sweep_model(
    benchmark: str = "lj",
    n_atoms: int = 2_048_000,
    skins: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2),
    *,
    v_rms: float = 2.08,  # sqrt(3T) at the LJ melt's T = 1.44
    dt: float = 0.005,
) -> list[SkinPoint]:
    """Model the skin trade-off for a production-size serial deck.

    Returns one point per skin; the per-step time is convex in the skin
    (too small -> constant rebuilding, too large -> bloated lists), with
    the minimum near the deck's Table 2 value.
    """
    base = get_workload(benchmark)
    model = CpuCostModel()
    points = []
    for skin in skins:
        cadence = _rebuild_cadence(base, skin, v_rms, dt)
        workload = replace(base, skin=float(skin), rebuild_every=cadence)
        compute = model.compute_times(workload, n_atoms, 1)
        stored_half = workload.list_neighbors_per_atom / 2.0
        check_cost = n_atoms * stored_half * _LIST_CHECK_PER_PAIR
        points.append(
            SkinPoint(
                skin=float(skin),
                rebuild_every=cadence,
                stored_pairs_per_atom=stored_half,
                step_seconds=compute.total + check_cost,
            )
        )
    return points


def optimal_skin(points: list[SkinPoint]) -> float:
    """The skin with the smallest modelled per-step time."""
    if not points:
        raise ValueError("no sweep points supplied")
    return min(points, key=lambda p: p.step_seconds).skin
