"""Section 10 takeaways, operationalized: next-platform projections.

The paper closes with directions for improving MD on next-generation
commodity platforms: better offload efficiency and multi-accelerator
scaling (port the fixes — e.g. SHAKE — to the GPU, cut data movement,
fuse kernels), and reducing CPU work imbalance.  Because this
reproduction *models* the platforms, those directions can be evaluated:
each :class:`Improvement` edits the corresponding model parameter and
the projection reports what the paper's headline configuration would
gain.

Also quantified: the introduction's "commodity platforms are currently
up to 1000x slower than DSAs" — the modelled rhodopsin ns/day against
an Anton-3-class machine's microseconds-per-day.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpu.executor import GpuModelConfig, simulate_gpu_run
from repro.gpu.kernels import GpuKernelCoefficients
from repro.gpu.transfers import PcieModel
from repro.parallel.executor import simulate_cpu_run
from repro.perfmodel.workloads import get_workload

__all__ = [
    "Improvement",
    "GPU_IMPROVEMENTS",
    "project_gpu_improvements",
    "project_cpu_balance",
    "dsa_gap",
    "commodity_fleet_gap",
]

#: An Anton-3-class DSA simulates ~100 us/day for ~1M-atom systems
#: (Shaw et al., 2021); expressed in ns/day for the gap computation.
ANTON3_NS_PER_DAY = 100_000.0


@dataclass(frozen=True)
class Improvement:
    """One modelled platform improvement."""

    name: str
    description: str
    config: GpuModelConfig
    kernels: GpuKernelCoefficients | None = None
    pcie: PcieModel | None = None


def _base() -> GpuModelConfig:
    return GpuModelConfig()


#: The paper's Section 6/10 optimization directions as model edits.
GPU_IMPROVEMENTS: tuple[Improvement, ...] = (
    Improvement(
        name="baseline",
        description="the reference GPU package as characterized",
        config=_base(),
    ),
    Improvement(
        name="port-fixes-to-gpu",
        description="SHAKE and the other fixes run on the device "
        "(Section 6.1: 'accelerating this computation on the GPU may be "
        "a viable next step')",
        config=replace(_base(), host_modify_factor=1.0, host_overlap=0.8,
                       host_bond_factor=1.0),
    ),
    Improvement(
        name="nvlink-class-interconnect",
        description="replace contended PCIe with an NVLink-class fabric",
        config=_base(),
        pcie=PcieModel(
            link_bandwidth_b_s=50.0e9,
            host_aggregate_b_s=300.0e9,
            transfer_latency_s=2.0e-6,
            small_transfer_efficiency=0.9,
        ),
    ),
    Improvement(
        name="fused-kernels",
        description="co-optimized kernels: fewer launches, less "
        "offload synchronization",
        config=replace(_base(), offload_sync_s=5.0e-5),
        kernels=GpuKernelCoefficients(launch_latency_s=1.0e-6),
    ),
    Improvement(
        name="all-combined",
        description="all of the above",
        config=replace(
            _base(),
            host_modify_factor=1.0,
            host_overlap=0.8,
            host_bond_factor=1.0,
            offload_sync_s=5.0e-5,
        ),
        kernels=GpuKernelCoefficients(launch_latency_s=1.0e-6),
        pcie=PcieModel(
            link_bandwidth_b_s=50.0e9,
            host_aggregate_b_s=300.0e9,
            transfer_latency_s=2.0e-6,
            small_transfer_efficiency=0.9,
        ),
    ),
)


def project_gpu_improvements(
    benchmark: str = "rhodo",
    n_atoms: int = 2_048_000,
    n_gpus: int = 8,
    improvements: tuple[Improvement, ...] = GPU_IMPROVEMENTS,
) -> dict[str, dict[str, float]]:
    """Evaluate each improvement on the headline GPU configuration.

    Returns ``{name: {ts_per_s, speedup, ns_per_day, gpu_utilization}}``
    with speedups relative to the baseline entry.
    """
    timestep_fs = get_workload(benchmark).timestep_fs
    results: dict[str, dict[str, float]] = {}
    baseline_ts: float | None = None
    for improvement in improvements:
        run = simulate_gpu_run(
            benchmark,
            n_atoms,
            n_gpus,
            config=improvement.config,
            kernel_coefficients=improvement.kernels,
            pcie=improvement.pcie,
        )
        if baseline_ts is None:
            baseline_ts = run.ts_per_s
        results[improvement.name] = {
            "ts_per_s": run.ts_per_s,
            "speedup": run.ts_per_s / baseline_ts,
            "ns_per_day": run.ns_per_day(timestep_fs),
            "gpu_utilization": run.gpu_utilization,
        }
    return results


def project_cpu_balance(
    benchmark: str = "chute", n_atoms: int = 2_048_000, n_ranks: int = 64
) -> dict[str, float]:
    """The other Section 10 direction: remove the CPU work imbalance.

    Re-runs the benchmark with its imbalance jitter zeroed and reports
    the recoverable throughput.
    """
    from repro.perfmodel.workloads import workloads

    base = simulate_cpu_run(benchmark, n_atoms, n_ranks)
    original = workloads[benchmark]
    workloads[benchmark] = replace(original, imbalance_amplitude=0.0)
    try:
        balanced = simulate_cpu_run(benchmark, n_atoms, n_ranks)
    finally:
        workloads[benchmark] = original
    return {
        "ts_per_s": base.ts_per_s,
        "ts_per_s_balanced": balanced.ts_per_s,
        "speedup": balanced.ts_per_s / base.ts_per_s,
    }


def dsa_gap(ns_per_day: float) -> float:
    """How many times slower than an Anton-3-class DSA this throughput is.

    The paper's introduction: commodity platforms are "up to 1000x
    slower than DSAs"; our modelled 8-GPU node lands right in that
    regime (~2.5 ns/day vs ~100 us/day).
    """
    if ns_per_day <= 0:
        raise ValueError("ns_per_day must be positive")
    return ANTON3_NS_PER_DAY / ns_per_day


def commodity_fleet_gap(
    n_nodes: int = 512,
    n_atoms: int = 2_048_000,
    rank_options: tuple[int, ...] = (8, 16, 32, 64),
) -> float:
    """The introduction's like-for-like gap: Anton 3 vs a commodity
    fleet of the *same node count*.

    Uses the multi-node estimator at the best ranks-per-node setting and
    returns how many times slower the fleet still is — landing in the
    paper's "up to 1000x slower than DSAs" band.
    """
    from repro.parallel.multinode import simulate_multinode_run

    timestep_fs = get_workload("rhodo").timestep_fs
    best_ns_day = 0.0
    for ranks_per_node in rank_options:
        run = simulate_multinode_run(
            "rhodo", n_atoms, n_nodes, ranks_per_node=ranks_per_node
        )
        ns_day = run.ts_per_s * timestep_fs * 1e-6 * 86_400.0
        best_ns_day = max(best_ns_day, ns_day)
    return ANTON3_NS_PER_DAY / best_ns_day
