"""Weak-scaling study: fixed atoms per rank (the prior-work view).

Section 4.1 contrasts the paper with earlier LAMMPS studies that
"focused on proving good weak scaling properties".  Here the simulated
node runs with a constant per-rank subdomain (e.g. 32k atoms/rank) as
the rank count grows; weak-scaling efficiency is
``t_step(1 rank) / t_step(n ranks)`` at constant work per rank, and —
unlike the strong-scaling pictures of Figures 6/9 — it stays high,
because the surface-to-volume ratio of each subdomain is constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.executor import simulate_cpu_run
from repro.platforms.instances import CPU_INSTANCE, InstanceSpec

__all__ = ["WeakScalingPoint", "weak_scaling_study"]


@dataclass(frozen=True)
class WeakScalingPoint:
    n_ranks: int
    n_atoms: int
    ts_per_s: float
    #: t(1) / t(n) at fixed atoms/rank.
    weak_efficiency: float


def weak_scaling_study(
    benchmark: str = "lj",
    atoms_per_rank: int = 32_000,
    rank_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    *,
    instance: InstanceSpec = CPU_INSTANCE,
    seed: int = 0,
) -> list[WeakScalingPoint]:
    """Grow the system with the rank count (constant per-rank work)."""
    if atoms_per_rank < 1:
        raise ValueError("atoms_per_rank must be positive")
    baseline = simulate_cpu_run(
        benchmark, atoms_per_rank, 1, seed=seed, instance=instance
    )
    points = []
    for n_ranks in rank_counts:
        result = simulate_cpu_run(
            benchmark,
            atoms_per_rank * n_ranks,
            n_ranks,
            seed=seed,
            instance=instance,
        )
        points.append(
            WeakScalingPoint(
                n_ranks=n_ranks,
                n_atoms=atoms_per_rank * n_ranks,
                ts_per_s=result.ts_per_s,
                weak_efficiency=baseline.step_seconds / result.step_seconds,
            )
        )
    return points
