"""The MD benchmark suite: the paper's five experiments plus Tersoff.

Each benchmark module exposes

* ``TAXONOMY`` — the Table 2 row (force field, cutoff, skin,
  neighbors/atom, integration style, …),
* ``build(n_atoms, seed)`` — a ready-to-run functional
  :class:`~repro.md.simulation.Simulation` at laptop scale,

and the :data:`registry` maps the paper's benchmark names (``rhodo``,
``lj``, ``chain``, ``eam``, ``chute``) plus the multi-body extension
workload (``tersoff``) to those modules.
"""

from repro.suite.base import BenchmarkDefinition, Taxonomy
from repro.suite.registry import (
    BENCHMARK_NAMES,
    CPU_BENCHMARKS,
    GPU_BENCHMARKS,
    PAPER_BENCHMARKS,
    get_benchmark,
    registry,
)

__all__ = [
    "BenchmarkDefinition",
    "Taxonomy",
    "registry",
    "get_benchmark",
    "BENCHMARK_NAMES",
    "CPU_BENCHMARKS",
    "PAPER_BENCHMARKS",
    "GPU_BENCHMARKS",
]
