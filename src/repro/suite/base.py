"""Benchmark definition scaffolding: taxonomy + builder + model hooks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.md.simulation import Simulation

__all__ = ["Taxonomy", "BenchmarkDefinition"]


@dataclass(frozen=True)
class Taxonomy:
    """One row of the paper's Table 2 ("Experiments Taxonomy").

    Distances are in the experiment's own units (Angstrom or sigma);
    ``neighbors_per_atom`` is the Table 2 value, which the functional
    engine reproduces from geometry (see ``tests/test_table2.py``).
    """

    name: str
    min_atoms: int
    force_field: str
    cutoff: float
    cutoff_units: str
    neighbor_skin: float
    neighbors_per_atom: int
    integration: str
    pair_modify_mix: str | None = None
    kspace_style: str | None = None
    kspace_error: float | None = None

    @property
    def computes_long_range(self) -> bool:
        return self.kspace_style is not None


@dataclass(frozen=True)
class BenchmarkDefinition:
    """A suite benchmark: its taxonomy and functional builder.

    ``build`` returns a functional :class:`Simulation` with roughly
    ``n_atoms`` particles (builders round to their lattice geometry).
    Engine-facing facts live here:

    * ``newton`` — whether Newton's third law halves the pair work
      (False only for Chute, per Section 3);
    * ``timestep_fs`` — physical timestep granularity, used to convert
      TS/s into ns/day for the paper's headline numbers;
    * ``gpu_supported`` — the reference GPU package lacks the
      gran/hooke/history pair style, so Chute is CPU-only (Section 6).

    Performance-model parameters (cost factors, imbalance amplitudes,
    topology densities) live in :mod:`repro.perfmodel.workloads`; the
    cross-layer consistency test keeps the shared fields in sync.
    """

    taxonomy: Taxonomy
    build: Callable[..., Simulation]
    newton: bool = True
    timestep_fs: float = 5.0
    gpu_supported: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.taxonomy.name

    def build_instrumented(
        self,
        n_atoms: int | None = None,
        *,
        tracer: object = None,
        metrics: object = None,
        **kwargs,
    ) -> Simulation:
        """Build the benchmark with observability hooks attached.

        ``tracer`` accepts anything :func:`repro.observability.tracer.
        resolve_tracer` does (an instance, ``True``, or ``None`` for the
        ``REPRO_TRACE`` environment default); ``metrics`` is an optional
        :class:`~repro.observability.metrics.MetricsRegistry`.
        """
        sim = self.build(n_atoms, **kwargs) if n_atoms is not None else self.build(**kwargs)
        if tracer is not None:
            sim.attach_tracer(tracer)
        if metrics is not None:
            sim.attach_metrics(metrics)
        return sim
