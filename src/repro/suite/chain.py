"""The "Chain" benchmark: bead-spring polymer melt (``bench/in.chain``).

Table 2 row: LJ (WCA) pair force field at cutoff 1.12 sigma, skin
0.4 sigma, 5 neighbors/atom, FENE bonded potential, NVE integration with
a Langevin thermostat on all atoms.  The paper's chains are 100-mers;
``build`` defaults to shorter chains for test speed and accepts
``chain_length=100`` for full fidelity.
"""

from __future__ import annotations

import numpy as np

from repro.md.bonded import FENEBond
from repro.md.fixes import LangevinThermostat
from repro.md.lattice import polymer_melt_system
from repro.md.potentials.lj import WCA_CUTOFF, LennardJonesCut
from repro.md.simulation import Simulation
from repro.suite.base import BenchmarkDefinition, Taxonomy

__all__ = ["TAXONOMY", "DEFINITION", "build"]

TAXONOMY = Taxonomy(
    name="chain",
    min_atoms=32_000,
    force_field="lj",
    cutoff=1.12,
    cutoff_units="sigma",
    neighbor_skin=0.4,
    neighbors_per_atom=5,
    integration="NVE",
)


def build(
    n_atoms: int = 500, seed: int = 4321, chain_length: int = 25
) -> Simulation:
    """FENE 100-mer melt (shorter chains by default for test speed)."""
    n_chains = max(1, round(n_atoms / chain_length))
    system = polymer_melt_system(n_chains, chain_length, seed=seed)
    rng = np.random.default_rng(seed + 1)
    # LAMMPS in.chain: special_bonds fene masks the 1-2 LJ interaction
    # (the FENE bond term already contains the WCA core).
    return Simulation(
        system,
        [LennardJonesCut(epsilon=1.0, sigma=1.0, cutoff=WCA_CUTOFF)],
        bonded=[FENEBond(k=30.0, r0=1.5)],
        fixes=[LangevinThermostat(temperature=1.0, damp=10.0, rng=rng)],
        dt=0.005,
        skin=TAXONOMY.neighbor_skin,
        exclusions=system.topology.bonds,
    )


DEFINITION = BenchmarkDefinition(
    taxonomy=TAXONOMY,
    build=build,
    newton=True,
    timestep_fs=10.8,
)
