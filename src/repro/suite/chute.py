"""The "Chute" benchmark: granular chute flow (``bench/in.chute``).

Table 2 row: ``gran/hooke/history`` frictional potential, cutoff
1.0 sigma (one particle diameter), skin 0.1 sigma, 7 neighbors/atom,
NVE integration.  Two properties single it out in the paper:

* it does **not** leverage Newton's third law (Section 3), so the pair
  work counts both directions;
* the reference GPU package lacks the pair style, so it is excluded
  from the GPU characterization (Section 6).
"""

from __future__ import annotations

import math

from repro.md.fixes import BottomWall, Gravity
from repro.md.lattice import chute_system
from repro.md.potentials.granular import HookeHistory
from repro.md.simulation import Simulation
from repro.suite.base import BenchmarkDefinition, Taxonomy

__all__ = ["TAXONOMY", "DEFINITION", "build"]

TAXONOMY = Taxonomy(
    name="chute",
    min_atoms=32_000,
    force_field="gran/hooke/history",
    cutoff=1.0,
    cutoff_units="sigma",
    neighbor_skin=0.1,
    neighbors_per_atom=7,
    integration="NVE",
)

_DT = 1e-4  # the LAMMPS deck's granular timestep


def build(n_atoms: int = 480, seed: int = 999) -> Simulation:
    """Packed granular bed flowing down a 26-degree chute."""
    # Bed aspect ratio ~ LAMMPS chute: wide in x/y, a few layers deep.
    layers = 4
    side = max(2, round(math.sqrt(n_atoms / layers)))
    system = chute_system(side, side, layers, seed=seed)
    potential = HookeHistory(
        k_n=200_000.0, gamma_n=50.0, mu=0.5, dt=_DT, max_radius=0.5
    )
    return Simulation(
        system,
        [potential],
        fixes=[Gravity(magnitude=1.0, chute_angle_deg=26.0), BottomWall()],
        dt=_DT,
        skin=TAXONOMY.neighbor_skin,
    )


DEFINITION = BenchmarkDefinition(
    taxonomy=TAXONOMY,
    build=build,
    newton=False,
    timestep_fs=1.0,  # nominal; granular time units are not femtoseconds
    gpu_supported=False,
)
