"""The "EAM" benchmark: copper metallic solid (``bench/in.eam``).

Table 2 row: EAM many-body potential, cutoff 4.95 Angstrom, skin
1.0 Angstrom, 45 neighbors/atom, NVE integration.
"""

from __future__ import annotations

from repro.md.lattice import eam_solid_system
from repro.md.potentials.eam import EAMAlloy, EAMParameters
from repro.md.simulation import Simulation
from repro.suite.base import BenchmarkDefinition, Taxonomy

__all__ = ["TAXONOMY", "DEFINITION", "build"]

TAXONOMY = Taxonomy(
    name="eam",
    min_atoms=32_000,
    force_field="EAM",
    cutoff=4.95,
    cutoff_units="Angstrom",
    neighbor_skin=1.0,
    neighbors_per_atom=45,
    integration="NVE",
)


def build(n_atoms: int = 500, seed: int = 777) -> Simulation:
    """Copper fcc solid with the analytic EAM potential."""
    system = eam_solid_system(n_atoms, seed=seed)
    return Simulation(
        system,
        [EAMAlloy(EAMParameters(cutoff=TAXONOMY.cutoff))],
        dt=0.002,
        skin=TAXONOMY.neighbor_skin,
    )


DEFINITION = BenchmarkDefinition(
    taxonomy=TAXONOMY,
    build=build,
    newton=True,
    timestep_fs=5.0,  # the LAMMPS deck's 5 fs metal-units timestep
)
