"""The "LJ" benchmark: 3-D Lennard-Jones melt (``bench/in.lj``).

Table 2 row: LJ force field, cutoff 2.5 sigma, skin 0.3 sigma,
55 neighbors/atom, NVE integration, no bonded or long-range terms.
"""

from __future__ import annotations

from repro.md.lattice import lj_melt_system
from repro.md.potentials.lj import LennardJonesCut
from repro.md.simulation import Simulation
from repro.suite.base import BenchmarkDefinition, Taxonomy

__all__ = ["TAXONOMY", "DEFINITION", "build"]

TAXONOMY = Taxonomy(
    name="lj",
    min_atoms=32_000,
    force_field="lj",
    cutoff=2.5,
    cutoff_units="sigma",
    neighbor_skin=0.3,
    neighbors_per_atom=55,
    integration="NVE",
)


def build(n_atoms: int = 500, seed: int = 12345) -> Simulation:
    """LJ melt at reduced density 0.8442 and temperature 1.44."""
    system = lj_melt_system(n_atoms, seed=seed)
    return Simulation(
        system,
        [LennardJonesCut(epsilon=1.0, sigma=1.0, cutoff=TAXONOMY.cutoff)],
        dt=0.005,
        skin=TAXONOMY.neighbor_skin,
    )


DEFINITION = BenchmarkDefinition(
    taxonomy=TAXONOMY,
    build=build,
    newton=True,
    # One LJ tau is ~2.16 ps for argon; the bench timestep 0.005 tau.
    timestep_fs=10.8,
)
