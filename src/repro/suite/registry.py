"""Benchmark registry: name -> definition lookups used by the harness."""

from __future__ import annotations

from repro.suite import chain, chute, eam_solid, lj_melt, rhodo, tersoff_si
from repro.suite.base import BenchmarkDefinition

__all__ = [
    "registry",
    "get_benchmark",
    "BENCHMARK_NAMES",
    "CPU_BENCHMARKS",
    "PAPER_BENCHMARKS",
    "GPU_BENCHMARKS",
]

#: All suite benchmarks: the paper's five in plot order, then the
#: Tersoff multi-body workload added by the campaign orchestrator.
registry: dict[str, BenchmarkDefinition] = {
    "chain": chain.DEFINITION,
    "chute": chute.DEFINITION,
    "eam": eam_solid.DEFINITION,
    "lj": lj_melt.DEFINITION,
    "rhodo": rhodo.DEFINITION,
    "tersoff": tersoff_si.DEFINITION,
}

BENCHMARK_NAMES: tuple[str, ...] = tuple(registry)

#: The paper's original five experiments (Table 2) — the set the
#: figures and the calibrated performance model are built from.
PAPER_BENCHMARKS: tuple[str, ...] = ("chain", "chute", "eam", "lj", "rhodo")

#: The CPU characterization covers the five modeled experiments
#: (Section 5); Tersoff is a measured-only extension workload.
CPU_BENCHMARKS: tuple[str, ...] = PAPER_BENCHMARKS

#: The GPU package lacks gran/hooke support, so Chute is excluded
#: (Section 6).
GPU_BENCHMARKS: tuple[str, ...] = tuple(
    name for name, definition in registry.items() if definition.gpu_supported
)


def get_benchmark(name: str) -> BenchmarkDefinition:
    """Look up a benchmark by its paper name (``lj``, ``rhodo``, ...)."""
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {BENCHMARK_NAMES}"
        ) from None
