"""Benchmark registry: name -> definition lookups used by the harness."""

from __future__ import annotations

from repro.suite import chain, chute, eam_solid, lj_melt, rhodo
from repro.suite.base import BenchmarkDefinition

__all__ = [
    "registry",
    "get_benchmark",
    "BENCHMARK_NAMES",
    "CPU_BENCHMARKS",
    "GPU_BENCHMARKS",
]

#: All five suite benchmarks, in the paper's plot order.
registry: dict[str, BenchmarkDefinition] = {
    "chain": chain.DEFINITION,
    "chute": chute.DEFINITION,
    "eam": eam_solid.DEFINITION,
    "lj": lj_melt.DEFINITION,
    "rhodo": rhodo.DEFINITION,
}

BENCHMARK_NAMES: tuple[str, ...] = tuple(registry)

#: The CPU characterization covers all five experiments (Section 5).
CPU_BENCHMARKS: tuple[str, ...] = BENCHMARK_NAMES

#: The GPU package lacks gran/hooke support, so Chute is excluded
#: (Section 6).
GPU_BENCHMARKS: tuple[str, ...] = tuple(
    name for name, definition in registry.items() if definition.gpu_supported
)


def get_benchmark(name: str) -> BenchmarkDefinition:
    """Look up a benchmark by its paper name (``lj``, ``rhodo``, ...)."""
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {BENCHMARK_NAMES}"
        ) from None
