"""The "Rhodopsin" benchmark: solvated biomolecule (``bench/in.rhodo``).

Table 2 row: CHARMM force field with ``pair_modify mix arithmetic``,
cutoff 8.0-10.0 Angstrom, skin 2.0 Angstrom, 440 neighbors/atom, NPT
integration with SHAKE constraints, and — uniquely in the suite —
long-range electrostatics via PPPM at a relative force-error threshold
of 1e-4 (the knob Section 7 sweeps down to 1e-7).

The all-atom rhodopsin/lipid-bilayer system itself is proprietary-scale
input data; :func:`repro.md.lattice.rhodopsin_proxy_system` substitutes
a rigid-water box with a charged solute chain that exercises the exact
same code paths (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import math

from repro.md.bonded import CosineDihedral, HarmonicAngle, HarmonicBond
from repro.md.constraints import ShakeConstraints
from repro.md.integrators import NoseHooverNPT
from repro.md.kspace.pppm import PPPM
from repro.md.lattice import rhodopsin_proxy_system
from repro.md.potentials.charmm import CharmmCoulLong
from repro.md.simulation import Simulation
from repro.suite.base import BenchmarkDefinition, Taxonomy

__all__ = ["TAXONOMY", "DEFINITION", "build"]

TAXONOMY = Taxonomy(
    name="rhodo",
    min_atoms=32_000,
    force_field="CHARMM",
    cutoff=10.0,
    cutoff_units="Angstrom",
    neighbor_skin=2.0,
    neighbors_per_atom=440,
    integration="NPT",
    pair_modify_mix="arithmetic",
    kspace_style="pppm",
    kspace_error=1e-4,
)

#: Lattice spacing putting the proxy close to liquid-water atom density
#: (~0.1 atoms / Angstrom^3), which yields Table 2's ~440 neighbors/atom
#: inside the 10 Angstrom cutoff.
_SPACING = 3.104


def build(
    n_atoms: int = 384,
    seed: int = 2022,
    *,
    kspace_error: float = 1e-4,
    n_solute_beads: int = 8,
) -> Simulation:
    """Rigid-water + solute proxy with PPPM, SHAKE and NPT.

    The Table 2 cutoff of 10 Angstrom needs a box at least ~24 Angstrom
    wide (minimum image); for smaller test systems the cutoff is scaled
    down proportionally, keeping the same code paths active.
    """
    n_molecules = max(1, (n_atoms - n_solute_beads) // 3)
    # Clamp the solute chain so it fits the box the builder will choose.
    n_cells = math.ceil((n_molecules + n_solute_beads) ** (1.0 / 3.0))
    box_height = n_cells * _SPACING
    n_solute_beads = max(0, min(n_solute_beads, int((box_height - 1.6) / 1.5)))
    proxy = rhodopsin_proxy_system(
        n_molecules,
        n_solute_beads=n_solute_beads,
        spacing=_SPACING,
        temperature=0.6,
        seed=seed,
    )
    # Clamp the cutoff so cutoff + skin fits the minimum-image bound.
    min_side = float(proxy.system.box.lengths.min())
    cutoff = min(TAXONOMY.cutoff, 0.5 * min_side - TAXONOMY.neighbor_skin - 0.1)
    if cutoff <= 2.0:
        raise ValueError("rhodo proxy too small for a meaningful cutoff")
    pppm = PPPM(
        accuracy=kspace_error,
        cutoff=cutoff,
        exclusions=proxy.exclusions,
    )
    pppm.setup(proxy.system)
    pair = CharmmCoulLong(
        proxy.epsilon,
        proxy.sigma,
        lj_inner=0.8 * cutoff,
        cutoff=cutoff,
        alpha=pppm.alpha,
        mix_style="arithmetic",
    )
    shake = ShakeConstraints(proxy.shake_pairs, proxy.shake_distances)
    integrator = NoseHooverNPT(
        temperature=0.6,
        t_damp=4.0,
        pressure=0.0,
        p_damp=40.0,
        n_constraints=shake.n_constraints,
    )
    bonded = [HarmonicBond(k=300.0, r0=1.5), HarmonicAngle(k=60.0)]
    if len(proxy.dihedrals):
        bonded.append(CosineDihedral(proxy.dihedrals, k=1.5, multiplicity=3))
    return Simulation(
        proxy.system,
        [pair],
        bonded=bonded,
        kspace=pppm,
        integrator=integrator,
        constraints=shake,
        fixes=[],
        dt=0.0409,  # 2 fs in (g/mol, Angstrom, kcal/mol) time units
        skin=TAXONOMY.neighbor_skin,
        exclusions=proxy.exclusions,
    )


DEFINITION = BenchmarkDefinition(
    taxonomy=TAXONOMY,
    build=build,
    newton=True,
    timestep_fs=2.0,  # the paper's ns/day headline assumes 2 fs steps
    gpu_supported=True,
)
