"""The "tersoff" benchmark: silicon covalent solid (sixth workload).

Not one of the paper's Table 2 rows — added by the campaign orchestrator
PR as the multi-body stressor: a three-body bond-order interaction whose
triplet traversal has a workload shape none of the original five
benchmarks exercises (the SCC17 reproduction paper in PAPERS.md
documents its vectorization story).  Cutoff 3.0 Angstrom, 4 bonded
first-shell neighbors in diamond cubic, NVE integration.
"""

from __future__ import annotations

from repro.md.lattice import tersoff_silicon_system
from repro.md.potentials.tersoff import Tersoff
from repro.md.simulation import Simulation
from repro.suite.base import BenchmarkDefinition, Taxonomy

__all__ = ["TAXONOMY", "DEFINITION", "build"]

TAXONOMY = Taxonomy(
    name="tersoff",
    min_atoms=32_000,
    force_field="Tersoff",
    cutoff=3.0,
    cutoff_units="Angstrom",
    neighbor_skin=1.0,
    neighbors_per_atom=4,
    integration="NVE",
)


def build(n_atoms: int = 512, seed: int = 1988) -> Simulation:
    """Silicon diamond-cubic solid with the Tersoff bond-order potential."""
    system = tersoff_silicon_system(n_atoms, seed=seed)
    return Simulation(
        system,
        [Tersoff()],
        dt=0.001,
        skin=TAXONOMY.neighbor_skin,
    )


DEFINITION = BenchmarkDefinition(
    taxonomy=TAXONOMY,
    build=build,
    # b_ij != b_ji: every directed pair is evaluated, so there is no
    # Newton-pairing saving to model.
    newton=False,
    timestep_fs=1.0,  # covalent Si needs the stiff-bond 1 fs step
    gpu_supported=False,
)
