"""The declarative campaign API: spec parsing, expansion, dedup accounting.

Tentpole of the campaign-orchestrator PR (ISSUE 10): one TOML spec
expands into a validated job matrix, runs through the batch service,
and lands as a merged ``repro-bench-report/2`` record whose dedup
block explains how much execution the content-address layer saved.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    load_campaign,
    parse_campaign,
    run_campaign,
)
from repro.campaign.spec import _mini_toml
from repro.report import validate_report

GOOD_SPEC = """
[campaign]
name = "smoke"
out = "BENCH_campaign.json"
pool_workers = 2

[base]
benchmark = "lj"
n_atoms = 150
steps = 5

[sweep]
precision = ["single", "double"]
workers = [1, 2]
"""


class TestParsing:
    def test_good_spec_round_trips(self):
        spec = parse_campaign(GOOD_SPEC)
        assert spec.name == "smoke"
        assert spec.n_cells == 4
        assert list(spec.axes) == ["precision", "workers"]
        assert spec.axes["workers"] == (1, 2)
        assert len(spec.source_sha256) == 64

    def test_expansion_order_is_last_axis_fastest(self):
        jobs = parse_campaign(GOOD_SPEC).expand()
        coords = [(j.precision, j.workers) for j in jobs]
        assert coords == [
            ("single", 1), ("single", 2), ("double", 1), ("double", 2),
        ]

    def test_figures_string_coerces_to_list(self):
        spec = parse_campaign(
            '[campaign]\nname = "x"\nfigures = "table2"\n'
            '[base]\nbenchmark = "lj"\n'
        )
        assert spec.figures == ("table2",)

    def test_load_campaign_reads_file(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text(GOOD_SPEC)
        assert load_campaign(path).n_cells == 4

    def test_invalid_toml_rejected(self):
        with pytest.raises(CampaignError):
            parse_campaign("[campaign\nname =")


class TestValidation:
    def test_empty_sweep_axis_rejected(self):
        with pytest.raises(CampaignError, match=r"axis 'workers' is empty"):
            parse_campaign(
                '[campaign]\nname = "x"\n[base]\nbenchmark = "lj"\n'
                "[sweep]\nworkers = []\n"
            )

    def test_axis_duplicating_base_key_rejected(self):
        with pytest.raises(CampaignError, match="duplicates a \\[base\\] key"):
            parse_campaign(
                '[campaign]\nname = "x"\n'
                '[base]\nbenchmark = "lj"\nsteps = 10\n'
                "[sweep]\nsteps = [10, 20]\n"
            )

    def test_unknown_base_field_rejected(self):
        with pytest.raises(CampaignError, match=r"\[base\] unknown field"):
            parse_campaign(
                '[campaign]\nname = "x"\n'
                '[base]\nbenchmark = "lj"\ntimestep = 0.001\n'
            )

    def test_unknown_sweep_axis_rejected(self):
        with pytest.raises(CampaignError, match=r"\[sweep\] unknown axis"):
            parse_campaign(
                '[campaign]\nname = "x"\n[base]\nbenchmark = "lj"\n'
                "[sweep]\ncutoff = [2.5, 3.0]\n"
            )

    def test_unknown_campaign_field_rejected(self):
        with pytest.raises(CampaignError, match=r"\[campaign\] unknown field"):
            parse_campaign('[campaign]\nname = "x"\nretries = 3\n')

    def test_unknown_table_rejected(self):
        with pytest.raises(CampaignError, match="unknown table"):
            parse_campaign('[campaign]\nname = "x"\n[extra]\nfoo = 1\n')

    def test_missing_name_rejected(self):
        with pytest.raises(CampaignError, match="name"):
            parse_campaign('[base]\nbenchmark = "lj"\n')

    def test_non_list_axis_rejected(self):
        with pytest.raises(CampaignError, match="must be a list"):
            CampaignSpec(name="x", base={}, sweep={"workers": 2})

    def test_problems_are_aggregated(self):
        with pytest.raises(CampaignError, match="unknown field.*empty"):
            parse_campaign(
                '[campaign]\nname = "x"\n'
                "[base]\nwavelength = 5\n"
                "[sweep]\nseed = []\n"
            )

    def test_bad_cell_names_its_coordinates(self):
        # steps = 0 passes table validation but fails JobSpec's own check;
        # the error must say which sweep cell produced it.
        with pytest.raises(CampaignError, match=r"cell \(steps=0\)"):
            parse_campaign(
                '[campaign]\nname = "x"\n[base]\nbenchmark = "lj"\n'
                "[sweep]\nsteps = [0]\n"
            ).expand()

    def test_pool_workers_must_be_positive(self):
        with pytest.raises(CampaignError, match="pool_workers"):
            CampaignSpec(name="x", base={}, sweep={}, pool_workers=0)


class TestMiniToml:
    """The 3.10 fallback parser handles the spec subset like tomllib."""

    def test_parses_the_reference_spec(self):
        data = _mini_toml(GOOD_SPEC)
        assert data["campaign"]["name"] == "smoke"
        assert data["base"]["n_atoms"] == 150
        assert data["sweep"]["precision"] == ["single", "double"]
        assert data["sweep"]["workers"] == [1, 2]

    def test_scalar_types(self):
        data = _mini_toml(
            "[t]\na = 1\nb = 2.5\nc = true\nd = false\ne = 'x'\n"
        )
        assert data["t"] == {"a": 1, "b": 2.5, "c": True, "d": False, "e": "x"}

    def test_duplicate_key_rejected_with_line_number(self):
        with pytest.raises(CampaignError, match="line 3.*duplicate key"):
            _mini_toml("[t]\na = 1\na = 2\n")

    def test_duplicate_table_rejected(self):
        with pytest.raises(CampaignError, match="duplicate table"):
            _mini_toml("[t]\na = 1\n[t]\nb = 2\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(CampaignError, match="expected 'key = value'"):
            _mini_toml("[t]\nnot a key value line\n")

    def test_matches_tomllib_on_the_reference_spec(self):
        tomllib = pytest.importorskip("tomllib")
        assert _mini_toml(GOOD_SPEC) == tomllib.loads(GOOD_SPEC)


class TestRunCampaign:
    def test_sweep_runs_with_dedup_and_validating_report(self, tmp_path):
        """The acceptance path: 2x2 matrix, >=1 dedup hit, valid record.

        ``workers`` is excluded from the job content address, so the
        two worker settings per precision collapse onto one execution
        each: 4 cells, 2 unique addresses, 2 dedup hits.
        """
        spec = parse_campaign(GOOD_SPEC)
        out = tmp_path / "BENCH_campaign.json"
        report = run_campaign(spec, out=out, timeout=600.0)

        assert validate_report(report) is report
        assert report["kind"] == "campaign"
        on_disk = json.loads(out.read_text())
        assert on_disk["dedup"] == report["dedup"]

        dedup = report["dedup"]
        assert dedup["cells"] == 4
        assert dedup["unique_addresses"] == 2
        assert dedup["collapsed_cells"] == 2
        assert dedup["dedup_hits"] >= 1
        assert dedup["dedup_hits"] == dedup["coalesced"] + dedup["served_cached"]

        rows = report["cells"]
        assert len(rows) == 4
        # Collapsed cells must agree bitwise with the cell they
        # collapsed onto: same content address -> same state digest.
        by_key = {}
        for row in rows:
            by_key.setdefault(row["cache_key"], set()).add(row["state_digest"])
        assert len(by_key) == 2
        assert all(len(digests) == 1 for digests in by_key.values())
        # The campaign block carries provenance back to the spec text.
        assert report["campaign"]["source_sha256"] == spec.source_sha256
        assert report["campaign"]["axes"]["workers"] == [1, 2]
        assert sorted(report["precision"]) == ["double", "single"]

    def test_figure_hooks_render_after_the_report(self, tmp_path):
        spec = CampaignSpec(
            name="fig",
            base={"benchmark": "lj", "n_atoms": 150, "steps": 2},
            sweep={},
            figures=("table3",),
        )
        out = tmp_path / "report.json"
        run_campaign(spec, out=out, timeout=600.0)
        rendered = tmp_path / "figures" / "table3.txt"
        assert rendered.exists()
        assert "V100" in rendered.read_text()
