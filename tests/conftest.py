"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.md.atoms import AtomSystem
from repro.md.box import Box


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20220707)


@pytest.fixture
def cubic_box() -> Box:
    return Box([10.0, 10.0, 10.0])


@pytest.fixture
def small_gas(cubic_box, rng) -> AtomSystem:
    """Fifty non-interacting particles with random state."""
    positions = rng.uniform(0.0, 10.0, size=(50, 3))
    system = AtomSystem(positions, cubic_box)
    system.seed_velocities(1.0, rng)
    return system


def finite_difference_forces(energy_fn, positions: np.ndarray, h: float = 1e-6):
    """Central-difference gradient of ``energy_fn`` (−∇E).

    ``energy_fn`` takes an ``(N, 3)`` array and returns a scalar energy.
    The shared oracle for every analytic-force test.
    """
    positions = np.asarray(positions, dtype=float)
    forces = np.zeros_like(positions)
    for i in range(positions.shape[0]):
        for d in range(3):
            plus = positions.copy()
            minus = positions.copy()
            plus[i, d] += h
            minus[i, d] -= h
            forces[i, d] = -(energy_fn(plus) - energy_fn(minus)) / (2.0 * h)
    return forces
