"""Tests for the runs.csv aggregation store."""

import pytest

from repro.core.aggregator import RunsTable
from repro.core.experiment import ExperimentSpec
from repro.core.runner import run_experiment


@pytest.fixture(scope="module")
def table():
    runs = RunsTable()
    for bench in ("lj", "chain"):
        for size in (32, 256):
            for ranks in (4, 8):
                runs.add(run_experiment(ExperimentSpec(bench, "cpu", size, ranks)))
    return runs


class TestQueries:
    def test_len_and_iter(self, table):
        assert len(table) == 8
        assert len(list(table)) == 8

    def test_filter_by_benchmark(self, table):
        assert len(table.query(benchmark="lj")) == 4

    def test_filter_combination(self, table):
        rows = table.query(benchmark="chain", size_k=256, resources=8)
        assert len(rows) == 1
        assert rows[0].label == "chain"

    def test_predicate_filter(self, table):
        fast = table.query(predicate=lambda r: r.ts_per_s > 0)
        assert len(fast) == 8

    def test_series_sorted_by_resources(self, table):
        series = table.series("ts_per_s", benchmark="lj", size_k=32)
        assert [ranks for ranks, _ in series] == [4, 8]
        assert series[1][1] > series[0][1]  # more ranks, faster


class TestCsvRoundTrip:
    def test_round_trip(self, table, tmp_path):
        path = tmp_path / "campaign" / "runs.csv"
        table.to_csv(path)
        restored = RunsTable.from_csv(path)
        assert len(restored) == len(table)
        first, second = next(iter(table)), next(iter(restored))
        assert first.ts_per_s == pytest.approx(second.ts_per_s)
        assert first.label == second.label

    def test_header_validation(self, tmp_path):
        path = tmp_path / "runs.csv"
        path.write_text("wrong,header\n1,2\n")
        with pytest.raises(ValueError, match="header"):
            RunsTable.from_csv(path)
