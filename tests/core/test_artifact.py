"""Tests for the artifact-compatible output layout and the CLI."""

import pytest

from repro.core.aggregator import RunsTable
from repro.core.artifact import ArtifactLayout
from repro.core.experiment import ExperimentSpec, Mode
from repro.core.runner import run_experiment


@pytest.fixture(scope="module")
def records():
    cpu = run_experiment(ExperimentSpec("lj", "cpu", 32, 8, mode=Mode.PROFILING))
    gpu = run_experiment(ExperimentSpec("eam", "gpu", 32, 2, mode=Mode.PROFILING))
    plain = run_experiment(ExperimentSpec("chain", "cpu", 32, 4))
    return cpu, gpu, plain


class TestArtifactLayout:
    def test_runs_split_per_platform(self, records, tmp_path):
        cpu, gpu, plain = records
        layout = ArtifactLayout(tmp_path)
        table = RunsTable([cpu, gpu, plain])
        written = layout.write_runs(table)
        assert written["cpu"].name == "runs.csv"
        assert written["cpu"].parent.name == "lammps"
        assert written["gpu"].parent.name == "lammps_gpu"
        assert len(layout.load_runs("cpu")) == 2
        assert len(layout.load_runs("gpu")) == 1

    def test_profile_round_trip(self, records, tmp_path):
        cpu, _, _ = records
        layout = ArtifactLayout(tmp_path)
        path = layout.write_profile(cpu)
        assert path.parts[-3:] == ("lj", "prof", "32k_8.json")
        payload = layout.load_profile("lj", 32, 8)
        assert payload["task_fractions"] == pytest.approx(cpu.task_fractions)

    def test_benchmarking_record_rejected_as_profile(self, records, tmp_path):
        _, _, plain = records
        layout = ArtifactLayout(tmp_path)
        with pytest.raises(ValueError, match="profiling"):
            layout.write_profile(plain)

    def test_unknown_platform_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactLayout(tmp_path).load_runs("tpu")

    def test_profile_index(self, records, tmp_path):
        cpu, gpu, _ = records
        layout = ArtifactLayout(tmp_path)
        layout.write_profile(cpu)
        layout.write_profile(gpu)
        assert len(layout.profile_index()) == 2


class TestCli:
    def test_model_campaign_command(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main([
            "model-campaign", "--platform", "cpu", "--benchmarks", "lj",
            "--sizes", "32", "--resources", "4", "--out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "lammps" / "runs.csv").exists()
        assert (tmp_path / "lj" / "prof" / "32k_4.json").exists()

    def test_figure_command(self, capsys):
        from repro.__main__ import main

        assert main(["figure", "table3"]) == 0
        out = capsys.readouterr().out
        assert "NVIDIA V100" in out

    def test_anchors_command(self, capsys):
        from repro.__main__ import main

        assert main(["anchors"]) == 0
        out = capsys.readouterr().out
        assert "rhodo CPU 2048k/64" in out
        assert "paper" in out

    def test_unknown_figure_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_run_deck_command(self, capsys):
        from pathlib import Path

        from repro.__main__ import main

        deck = Path(__file__).resolve().parents[2] / "decks" / "in.melt-nvt"
        assert main(["run-deck", str(deck)]) == 0
        out = capsys.readouterr().out
        assert "running 150 steps" in out
        assert "Task breakdown" in out
