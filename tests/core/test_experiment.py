"""Tests for experiment specifications and sweeps."""

import pytest

from repro.core.experiment import ExperimentSpec, Mode, sweep


class TestSpec:
    def test_basic_fields(self):
        spec = ExperimentSpec("lj", "cpu", 32, 8)
        assert spec.n_atoms == 32_000
        assert spec.mode is Mode.BENCHMARKING
        assert spec.precision == "mixed"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            ExperimentSpec("namd", "cpu", 32, 8)

    def test_bad_platform_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec("lj", "tpu", 32, 8)

    def test_non_positive_dimensions_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec("lj", "cpu", 0, 8)
        with pytest.raises(ValueError):
            ExperimentSpec("lj", "cpu", 32, 0)

    def test_specs_hashable_and_equal(self):
        a = ExperimentSpec("lj", "cpu", 32, 8)
        b = ExperimentSpec("lj", "cpu", 32, 8)
        assert a == b
        assert hash(a) == hash(b)

    def test_with_mode(self):
        spec = ExperimentSpec("lj", "cpu", 32, 8).with_mode(Mode.PROFILING)
        assert spec.mode is Mode.PROFILING


class TestLabels:
    """The paper's experiment naming: rhodo-e-6, lj-double, ..."""

    def test_baseline_label_is_benchmark_name(self):
        assert ExperimentSpec("rhodo", "cpu", 32, 8).label == "rhodo"

    def test_error_threshold_suffix(self):
        spec = ExperimentSpec("rhodo", "cpu", 32, 8, kspace_error=1e-6)
        assert spec.label == "rhodo-e-6"

    def test_baseline_threshold_unsuffixed(self):
        spec = ExperimentSpec("rhodo", "cpu", 32, 8, kspace_error=1e-4)
        assert spec.label == "rhodo"

    def test_precision_suffix(self):
        spec = ExperimentSpec("lj", "cpu", 32, 8, precision="double")
        assert spec.label == "lj-double"

    def test_combined_suffixes(self):
        spec = ExperimentSpec(
            "rhodo", "cpu", 32, 8, kspace_error=1e-7, precision="single"
        )
        assert spec.label == "rhodo-e-7-single"


class TestSweep:
    def test_cartesian_product_size(self):
        specs = list(sweep(["lj", "eam"], "cpu", [32, 256], [1, 2, 4]))
        assert len(specs) == 2 * 2 * 3

    def test_kspace_errors_skip_non_kspace_benchmarks(self):
        specs = list(
            sweep(["lj", "rhodo"], "cpu", [32], [1], kspace_errors=[1e-5, 1e-6])
        )
        benchmarks = [s.benchmark for s in specs]
        assert benchmarks.count("rhodo") == 2
        assert benchmarks.count("lj") == 0

    def test_precisions_expanded(self):
        specs = list(
            sweep(["lj"], "cpu", [32], [1], precisions=["single", "double"])
        )
        assert {s.precision for s in specs} == {"single", "double"}

    def test_mode_propagated(self):
        specs = list(sweep(["lj"], "cpu", [32], [1], mode=Mode.PROFILING))
        assert specs[0].mode is Mode.PROFILING
