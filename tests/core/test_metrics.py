"""Tests for the derived performance metrics."""

import pytest

from repro.core.metrics import (
    energy_efficiency,
    ns_per_day,
    parallel_efficiency,
    parallel_efficiency_series,
    timesteps_for_runtime,
)


class TestParallelEfficiency:
    def test_perfect_scaling(self):
        assert parallel_efficiency(64.0, 1.0, 64) == pytest.approx(1.0)

    def test_half_efficiency(self):
        assert parallel_efficiency(32.0, 1.0, 64) == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0.0, 4)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 1.0, 0)

    def test_series_uses_first_point_as_baseline(self):
        effs = parallel_efficiency_series([10.0, 18.0, 30.0], [1, 2, 4])
        assert effs[0] == pytest.approx(1.0)
        assert effs[1] == pytest.approx(0.9)
        assert effs[2] == pytest.approx(0.75)

    def test_series_baseline_rescaled_to_one_resource(self):
        """GPU plots start at 1 device: efficiency is relative to it."""
        effs = parallel_efficiency_series([20.0, 40.0], [2, 4])
        assert effs[0] == pytest.approx(1.0)

    def test_series_validation(self):
        with pytest.raises(ValueError):
            parallel_efficiency_series([], [])
        with pytest.raises(ValueError):
            parallel_efficiency_series([1.0], [1, 2])


class TestEnergyAndTurnaround:
    def test_energy_efficiency(self):
        assert energy_efficiency(100.0, 200.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            energy_efficiency(1.0, 0.0)

    def test_ns_per_day_rhodo_headline(self):
        """10.77 TS/s at 2 fs -> ~1.86 ns/day (the paper rounds to 2)."""
        assert ns_per_day(10.77, 2.0) == pytest.approx(1.861, rel=1e-3)

    def test_ns_per_day_validation(self):
        with pytest.raises(ValueError):
            ns_per_day(1.0, 0.0)

    def test_timesteps_for_runtime(self):
        assert timesteps_for_runtime(100.0, 10.0) == 1000

    def test_timesteps_rounds_up(self):
        assert timesteps_for_runtime(0.05, 10.0) == 1

    def test_timesteps_validation(self):
        with pytest.raises(ValueError):
            timesteps_for_runtime(0.0, 10.0)
