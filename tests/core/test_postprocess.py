"""Tests for the artifact post-processing (the authors' script suite)."""

import pytest

from repro.core.artifact import ArtifactLayout
from repro.core.experiment import ExperimentSpec, Mode
from repro.core.postprocess import (
    aggregate_gpu_data,
    aggregate_mpi_data,
    aggregate_task_breakdown,
    render_aggregate,
)
from repro.core.runner import run_experiment


@pytest.fixture
def populated_layout(tmp_path):
    layout = ArtifactLayout(tmp_path)
    for spec in (
        ExperimentSpec("lj", "cpu", 32, 8, mode=Mode.PROFILING),
        ExperimentSpec("lj", "cpu", 256, 8, mode=Mode.PROFILING),
        ExperimentSpec("rhodo", "cpu", 32, 16, mode=Mode.PROFILING),
        ExperimentSpec("eam", "gpu", 32, 2, mode=Mode.PROFILING),
    ):
        layout.write_profile(run_experiment(spec))
    return layout


class TestAggregation:
    def test_task_breakdown_covers_all_profiles(self, populated_layout):
        agg = aggregate_task_breakdown(populated_layout)
        assert ("lj", 32, 8) in agg
        assert ("rhodo", 32, 16) in agg
        assert ("eam", 32, 2) in agg
        for fractions in agg.values():
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_mpi_data_grouped_per_benchmark(self, populated_layout):
        agg = aggregate_mpi_data(populated_layout)
        assert set(agg) == {"lj", "rhodo"}  # GPU profiles carry no MPI data
        assert (32, 8) in agg["lj"]
        assert (256, 8) in agg["lj"]
        assert "MPI_Init" in agg["lj"][(32, 8)]

    def test_gpu_data_only_from_gpu_profiles(self, populated_layout):
        agg = aggregate_gpu_data(populated_layout)
        assert set(agg) == {"eam"}
        kernels = agg["eam"][(32, 2)]
        assert "k_eam_fast" in kernels
        assert "[CUDA memcpy HtoD]" in kernels

    def test_render(self, populated_layout):
        agg = aggregate_task_breakdown(populated_layout)
        out = render_aggregate(agg, title="Tasks")
        assert "Tasks" in out
        assert "lj" in out and "rhodo" in out

    def test_empty_tree(self, tmp_path):
        layout = ArtifactLayout(tmp_path)
        assert aggregate_task_breakdown(layout) == {}
        assert aggregate_mpi_data(layout) == {}
        assert aggregate_gpu_data(layout) == {}
