"""Tests for the text-table rendering helpers."""

import pytest

from repro.core.report import format_value, render_breakdown, render_table


class TestFormatValue:
    def test_none(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_small_float_scientific(self):
        assert "e" in format_value(1e-6)

    def test_large_float_scientific(self):
        assert "e" in format_value(123456.0)

    def test_plain_float(self):
        assert format_value(3.14159, precision=3) == "3.14"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_string_passthrough(self):
        assert format_value("rhodo") == "rhodo"


class TestRenderTable:
    def test_alignment_and_header(self):
        out = render_table(["name", "value"], [["lj", 1.5], ["rhodo", 2.0]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert len(lines) == 4
        # Columns align: every row has the separator at the same offset.
        sep_positions = {line.index("|") for line in (lines[0], *lines[2:])}
        assert len(sep_positions) == 1

    def test_title_prepended(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestRenderBreakdown:
    def test_sorted_by_share(self):
        out = render_breakdown({"Pair": 0.7, "Neigh": 0.3})
        lines = out.splitlines()
        assert "Pair" in lines[0]
        assert "Neigh" in lines[1]

    def test_bar_lengths_proportional(self):
        out = render_breakdown({"A": 0.5, "B": 0.25}, width=40)
        bars = [line.count("#") for line in out.splitlines()]
        assert bars[0] == 2 * bars[1]

    def test_title(self):
        out = render_breakdown({"A": 1.0}, title="tasks")
        assert out.splitlines()[0] == "tasks"


class TestRenderSeries:
    def test_bars_proportional(self):
        from repro.core.report import render_series

        out = render_series([(1, 10.0), (2, 20.0)])
        lines = out.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_title_and_values_shown(self):
        from repro.core.report import render_series

        out = render_series([(1, 5.0)], title="scaling")
        assert out.splitlines()[0] == "scaling"
        assert "5" in out

    def test_empty_rejected(self):
        from repro.core.report import render_series

        with pytest.raises(ValueError):
            render_series([])

    def test_zero_series_safe(self):
        from repro.core.report import render_series

        out = render_series([(1, 0.0), (2, 0.0)])
        assert "#" not in out
