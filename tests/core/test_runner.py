"""Tests for experiment execution and run records."""

import pytest

from repro.core.experiment import ExperimentSpec, Mode
from repro.core.runner import RunRecord, run_experiment


class TestBenchmarkingMode:
    def test_cpu_record_populated(self):
        record = run_experiment(ExperimentSpec("lj", "cpu", 32, 8))
        assert record.benchmark == "lj"
        assert record.platform == "cpu"
        assert record.ts_per_s > 0
        assert record.power_watts > 0
        assert record.memory_gb > 0
        assert record.task_fractions == {}  # benchmarking mode: no profile

    def test_gpu_record_populated(self):
        record = run_experiment(ExperimentSpec("eam", "gpu", 32, 2))
        assert record.platform == "gpu"
        assert record.utilization > 0
        assert record.mpi_time_fraction == 0.0

    def test_run_sized_for_power_sampling(self):
        """Section 4.2: enough timesteps for >= 10 s of runtime."""
        record = run_experiment(ExperimentSpec("lj", "cpu", 32, 8))
        assert record.runtime_s >= 10.0
        assert record.n_timesteps == pytest.approx(
            record.runtime_s * record.ts_per_s, rel=1e-6
        )

    def test_measured_power_has_sampling_noise(self):
        """The recorded watts come from the 0.5 s sampler, not the model."""
        a = run_experiment(ExperimentSpec("lj", "cpu", 32, 8, seed=1))
        b = run_experiment(ExperimentSpec("lj", "cpu", 32, 8, seed=2))
        # The seed drives both rank jitter and sampling noise; power
        # readings differ slightly but stay near the model value.
        assert a.power_watts != b.power_watts
        assert a.power_watts == pytest.approx(b.power_watts, rel=0.05)


class TestProfilingMode:
    def test_cpu_profile_payloads(self):
        record = run_experiment(
            ExperimentSpec("rhodo", "cpu", 32, 8, mode=Mode.PROFILING)
        )
        assert sum(record.task_fractions.values()) == pytest.approx(1.0)
        assert sum(record.mpi_function_fractions.values()) == pytest.approx(1.0)
        assert record.kernel_fractions == {}

    def test_gpu_profile_payloads(self):
        record = run_experiment(
            ExperimentSpec("lj", "gpu", 32, 2, mode=Mode.PROFILING)
        )
        assert sum(record.kernel_fractions.values()) == pytest.approx(1.0)
        assert "[CUDA memcpy HtoD]" in record.kernel_fractions


class TestRecordRoundTrip:
    def test_csv_row_round_trip(self):
        record = run_experiment(
            ExperimentSpec("rhodo", "cpu", 32, 8, mode=Mode.PROFILING, kspace_error=1e-6)
        )
        restored = RunRecord.from_row(record.to_row())
        assert restored.label == "rhodo-e-6"
        assert restored.ts_per_s == pytest.approx(record.ts_per_s)
        assert restored.kspace_error == pytest.approx(1e-6)
        assert restored.task_fractions == pytest.approx(record.task_fractions)

    def test_none_kspace_round_trip(self):
        record = run_experiment(ExperimentSpec("lj", "cpu", 32, 8))
        restored = RunRecord.from_row(record.to_row())
        assert restored.kspace_error is None

    def test_short_row_rejected(self):
        with pytest.raises(ValueError):
            RunRecord.from_row(["lj", "cpu"])
