"""Shape tests for the CPU-instance figures (3, 4, 5, 6)."""

import pytest

from repro.figures import fig03, fig04, fig05, fig06


@pytest.fixture(scope="module")
def data03():
    return fig03.generate()


@pytest.fixture(scope="module")
def data04():
    return fig04.generate()


@pytest.fixture(scope="module")
def data05():
    return fig05.generate()


@pytest.fixture(scope="module")
def data06():
    return fig06.generate()


class TestFig03Breakdown:
    def test_full_grid_generated(self, data03):
        assert len(data03.series) == 5 * 4 * 7

    def test_lj_serial_pair_share_over_75pct(self, data03):
        """Section 5: LJ spends >75% of a 1-rank run computing pairs."""
        assert data03.series[("lj", 32, 1)]["Pair"] > 0.75

    def test_pair_share_follows_neighbor_count(self, data03):
        """Chain and Chute (5 and 7 neighbors) spend much less in Pair
        than LJ (55) despite Chain sharing LJ's force field."""
        for size in (32, 2048):
            lj = data03.series[("lj", size, 1)]["Pair"]
            assert data03.series[("chain", size, 1)]["Pair"] < lj
            assert data03.series[("chute", size, 1)]["Pair"] < lj

    def test_comm_grows_with_parallelization_small_systems(self, data03):
        serial = data03.series[("lj", 32, 1)]["Comm"]
        wide = data03.series[("lj", 32, 64)]["Comm"]
        assert wide > serial

    def test_comm_smaller_for_larger_systems(self, data03):
        small = data03.series[("lj", 32, 64)]["Comm"]
        big = data03.series[("lj", 2048, 64)]["Comm"]
        assert big < small

    def test_bonded_share_marginal(self, data03):
        """Bond time is marginal for Rhodopsin and Chain (Section 5)."""
        assert data03.series[("rhodo", 2048, 1)]["Bond"] < 0.10
        assert data03.series[("chain", 2048, 1)]["Bond"] < 0.45

    def test_only_rhodo_has_kspace_share(self, data03):
        assert data03.series[("rhodo", 864, 1)]["Kspace"] > 0.05
        for bench in ("lj", "chain", "eam", "chute"):
            assert data03.series[(bench, 864, 1)]["Kspace"] == 0.0

    def test_render(self, data03):
        assert "Figure 3" in data03.render()


class TestFig04MpiOverhead:
    def test_overhead_decreases_with_system_size(self, data04):
        for bench in ("lj", "eam", "chain"):
            small, _ = data04.series[(bench, 32, 64)]
            big, _ = data04.series[(bench, 2048, 64)]
            assert big < small

    def test_imbalance_ordering(self, data04):
        """EAM and LJ have much lower imbalance than Chain and Chute."""
        for size in (256, 2048):
            for ranks in (16, 64):
                _, chain_imb = data04.series[("chain", size, ranks)]
                _, chute_imb = data04.series[("chute", size, ranks)]
                _, lj_imb = data04.series[("lj", size, ranks)]
                _, eam_imb = data04.series[("eam", size, ranks)]
                assert min(chain_imb, chute_imb) > max(lj_imb, eam_imb)

    def test_percentages_bounded(self, data04):
        for mpi_pct, imb_pct in data04.series.values():
            assert 0 <= imb_pct <= mpi_pct <= 100


class TestFig05MpiFunctions:
    def test_fractions_normalized(self, data05):
        for fractions in data05.series.values():
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_init_considerable_and_growing_with_ranks(self, data05):
        """Section 5.1: MPI_Init takes a considerable share, increasing
        with the number of MPI processes."""
        low = data05.series[("lj", 32, 4)]["MPI_Init"]
        high = data05.series[("lj", 32, 64)]["MPI_Init"]
        assert high > low
        assert high > 0.15

    def test_data_exchange_grows_with_system_size(self, data05):
        """Send/Sendrecv become more prominent for bigger systems, where
        synchronization (Init/Wait) no longer dominates."""
        for bench in ("lj", "eam"):
            small = data05.series[(bench, 32, 64)]
            big = data05.series[(bench, 2048, 64)]
            small_data = small["MPI_Send"] + small["MPI_Sendrecv"]
            big_data = big["MPI_Send"] + big["MPI_Sendrecv"]
            assert big_data > small_data


class TestFig06Scaling:
    def test_rhodo_slowest_everywhere(self, data06):
        for size in (32, 256, 864, 2048):
            for ranks in (1, 64):
                rhodo = data06.series[("rhodo", size, ranks)]["ts_per_s"]
                others = [
                    data06.series[(b, size, ranks)]["ts_per_s"]
                    for b in ("lj", "chain", "eam", "chute")
                ]
                assert rhodo < min(others)

    def test_chute_fastest_at_32k_but_not_at_2048k(self, data06):
        """Chute leads small systems but cannot sustain it (Section 5.2)."""
        chute_32 = data06.series[("chute", 32, 64)]["ts_per_s"]
        others_32 = [
            data06.series[(b, 32, 64)]["ts_per_s"] for b in ("lj", "chain", "eam")
        ]
        assert chute_32 > max(others_32)
        chute_2048 = data06.series[("chute", 2048, 64)]["ts_per_s"]
        lj_2048 = data06.series[("lj", 2048, 64)]["ts_per_s"]
        chain_2048 = data06.series[("chain", 2048, 64)]["ts_per_s"]
        assert chute_2048 < max(lj_2048, chain_2048)

    def test_chute_worst_parallel_efficiency(self, data06):
        for size in (256, 864, 2048):
            chute = data06.series[("chute", size, 64)]["parallel_efficiency_pct"]
            for bench in ("lj", "eam", "rhodo"):
                assert chute < data06.series[(bench, size, 64)][
                    "parallel_efficiency_pct"
                ]

    def test_efficiencies_bounded(self, data06):
        for metrics in data06.series.values():
            assert 0 < metrics["parallel_efficiency_pct"] <= 100.0 + 1e-6

    def test_rhodo_anchor_at_2048k(self, data06):
        assert data06.series[("rhodo", 2048, 64)]["ts_per_s"] == pytest.approx(
            10.77, rel=0.2
        )

    def test_energy_efficiency_highest_for_small_cheap_runs(self, data06):
        small = data06.series[("chute", 32, 64)]["ts_per_s_per_watt"]
        big = data06.series[("chute", 2048, 64)]["ts_per_s_per_watt"]
        assert small > big
