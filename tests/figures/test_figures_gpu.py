"""Shape tests for the GPU-instance figures (7, 8, 9)."""

import pytest

from repro.figures import fig07, fig08, fig09


@pytest.fixture(scope="module")
def data07():
    return fig07.generate()


@pytest.fixture(scope="module")
def data08():
    return fig08.generate()


@pytest.fixture(scope="module")
def data09():
    return fig09.generate()


class TestFig07GpuBreakdown:
    def test_no_chute_panel(self, data07):
        benches = {key[0] for key in data07.series}
        assert benches == {"rhodo", "lj", "chain", "eam"}
        assert len(data07.series) == 4 * 4 * 5

    def test_rhodo_pair_share_drops_below_quarter(self, data07):
        """Section 6.1: the GPU runs Rhodopsin's pair task much faster."""
        for size in (864, 2048):
            assert data07.series[("rhodo", size, 8)]["Pair"] < 0.25

    def test_eam_still_pair_dominated(self, data07):
        """EAM still spends most of its runtime in pair computation."""
        fractions = data07.series[("eam", 2048, 1)]
        assert fractions["Pair"] == max(fractions.values())

    def test_rhodo_modify_more_relevant_than_on_cpu(self, data07):
        """SHAKE has no GPU port: Modify grows in the GPU breakdown."""
        from repro.figures import fig03

        gpu = data07.series[("rhodo", 2048, 8)]["Modify"]
        cpu = fig03.generate(
            benchmarks=("rhodo",), sizes_k=(2048,), ranks=(64,)
        ).series[("rhodo", 2048, 64)]["Modify"]
        assert gpu > cpu


class TestFig08Kernels:
    def test_memcpy_entries_everywhere(self, data08):
        for fractions in data08.series.values():
            assert "[CUDA memcpy HtoD]" in fractions
            assert "[CUDA memcpy DtoH]" in fractions

    def test_data_movement_majority_of_device_activity(self, data08):
        """'The majority of the time actively spent by the GPU is
        involved in memory movement primitives' (Section 6.1)."""
        fractions = data08.series[("lj", 2048, 8)]
        moved = sum(v for k, v in fractions.items() if k.startswith("[CUDA"))
        assert moved > 0.35

    def test_rhodo_neigh_kernel_breaking_point(self, data08):
        """make_rho/particle_map lead up to 864k; calc_neigh_list_cell
        becomes prevalent at 2048k (Section 6.1)."""

        def top_compute_kernel(size):
            fractions = data08.series[("rhodo", size, 8)]
            compute = {k: v for k, v in fractions.items() if not k.startswith("[")}
            return max(compute, key=compute.get)

        assert top_compute_kernel(256) in ("make_rho", "particle_map", "interp")
        assert top_compute_kernel(864) in ("make_rho", "particle_map", "interp")
        assert top_compute_kernel(2048) == "calc_neigh_list_cell"

    def test_eam_split_kernels_present(self, data08):
        fractions = data08.series[("eam", 864, 4)]
        assert fractions["k_eam_fast"] > 0
        assert fractions["k_energy_fast"] > 0


class TestFig09GpuScaling:
    def test_parallel_efficiency_worse_than_cpu(self, data09):
        """Section 6.2: multi-GPU scaling is considerably worse."""
        from repro.figures import fig06

        cpu = fig06.generate(benchmarks=("lj",), sizes_k=(2048,), ranks=(1, 64))
        cpu_eff = cpu.series[("lj", 2048, 64)]["parallel_efficiency_pct"]
        gpu_eff = data09.series[("lj", 2048, 8)]["parallel_efficiency_pct"]
        assert gpu_eff < cpu_eff

    def test_efficiency_floor_below_40pct(self, data09):
        """The paper quotes 23.28% as the worst efficiency."""
        floor = min(
            m["parallel_efficiency_pct"] for m in data09.series.values()
        )
        assert floor < 40.0

    def test_eam_outperforms_chain_on_gpu(self, data09):
        for size in (256, 864, 2048):
            eam = data09.series[("eam", size, 8)]["ts_per_s"]
            chain = data09.series[("chain", size, 8)]["ts_per_s"]
            assert eam > chain

    def test_rhodo_gpu_anchor(self, data09):
        assert data09.series[("rhodo", 2048, 8)]["ts_per_s"] == pytest.approx(
            16.09, rel=0.2
        )

    def test_gpu_utilization_low_at_2m(self, data09):
        """Section 10: average per-GPU utilization ~30% at 2M atoms."""
        util = data09.series[("rhodo", 2048, 8)]["gpu_utilization"]
        assert util < 0.5

    def test_energy_efficiency_below_cpu_peak(self, data09):
        """GPU-instance TS/s/W stays below the CPU instance's peak."""
        from repro.figures import fig06

        cpu = fig06.generate(benchmarks=("chute",), sizes_k=(32,), ranks=(1, 64))
        cpu_peak = cpu.series[("chute", 32, 64)]["ts_per_s_per_watt"]
        gpu_peak = max(m["ts_per_s_per_watt"] for m in data09.series.values())
        assert gpu_peak < cpu_peak
