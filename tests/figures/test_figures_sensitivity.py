"""Shape tests for the sensitivity figures (10-16) and the headline."""

import pytest

from repro.figures import (
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    headline,
)


@pytest.fixture(scope="module")
def data10():
    return fig10.generate()


@pytest.fixture(scope="module")
def data11():
    return fig11.generate()


@pytest.fixture(scope="module")
def data13():
    return fig13.generate()


class TestFig10ErrorThresholdCpu:
    def test_performance_monotone_in_threshold(self, data10):
        """Lowering the threshold always costs performance."""
        for size in (32, 256, 864, 2048):
            for ranks in (1, 64):
                series = [
                    data10.series[(t, size, ranks)]["ts_per_s"]
                    for t in (1e-4, 1e-5, 1e-6, 1e-7)
                ]
                assert series == sorted(series, reverse=True)

    def test_anchor_values(self, data10):
        assert data10.series[(1e-4, 2048, 64)]["ts_per_s"] == pytest.approx(
            10.77, rel=0.2
        )
        assert data10.series[(1e-7, 2048, 64)]["ts_per_s"] == pytest.approx(
            3.54, rel=0.25
        )

    def test_parallel_efficiency_degrades(self, data10):
        base = data10.series[(1e-4, 2048, 64)]["parallel_efficiency_pct"]
        tight = data10.series[(1e-7, 2048, 64)]["parallel_efficiency_pct"]
        assert tight < base


class TestFig11ErrorBreakdown:
    def test_kspace_share_grows_with_tighter_threshold(self, data11):
        for size in (256, 2048):
            for ranks in (2, 64):
                shares = [
                    data11.series[(t, size, ranks)]["Kspace"]
                    for t in (1e-4, 1e-5, 1e-6, 1e-7)
                ]
                assert shares == sorted(shares)

    def test_kspace_dominates_at_1e7(self, data11):
        assert data11.series[(1e-7, 2048, 2)]["Kspace"] > 0.5


class TestFig12ErrorMpi:
    def test_send_share_grows_with_size_at_tight_threshold(self):
        data = fig12.generate(sizes_k=(32, 2048), ranks=(16,), thresholds=(1e-7,))
        small = data.series[(1e-7, 32, 16)]["MPI_Send"]
        big = data.series[(1e-7, 2048, 16)]["MPI_Send"]
        assert big > small


class TestFig13ErrorThresholdGpu:
    def test_gpu_collapse_stronger_than_cpu(self, data13, data10):
        """The GPU pays ~35x at 1e-7 vs ~3x on the CPU (Section 7)."""
        gpu_ratio = (
            data13.series[(1e-4, 2048, 8)]["ts_per_s"]
            / data13.series[(1e-7, 2048, 8)]["ts_per_s"]
        )
        cpu_ratio = (
            data10.series[(1e-4, 2048, 64)]["ts_per_s"]
            / data10.series[(1e-7, 2048, 64)]["ts_per_s"]
        )
        assert gpu_ratio > 3 * cpu_ratio

    def test_anchor_values(self, data13):
        assert data13.series[(1e-4, 2048, 8)]["ts_per_s"] == pytest.approx(
            16.09, rel=0.2
        )
        assert data13.series[(1e-7, 2048, 8)]["ts_per_s"] == pytest.approx(
            0.46, rel=0.35
        )


class TestFig14ErrorOverhead:
    def test_relative_mpi_overhead_shrinks_with_threshold(self):
        """Section 7: lowering the threshold reduces the MPI share."""
        data = fig14.generate(sizes_k=(2048,))
        base = data.series[(1e-4, 2048, 64)][0]
        tight = data.series[(1e-7, 2048, 64)][0]
        assert tight < base

    def test_thresholds_match_paper_selection(self):
        assert fig14.FIG14_THRESHOLDS == (1e-4, 1e-6, 1e-7)


class TestFig15PrecisionCpu:
    @pytest.fixture(scope="class")
    def data15(self):
        return fig15.generate(sizes_k=(2048,), ranks=(64,))

    def test_double_always_slowest(self, data15):
        for bench in ("lj", "rhodo"):
            double = data15.series[(bench, "double", 2048, 64)]
            single = data15.series[(bench, "single", 2048, 64)]
            mixed = data15.series[(bench, "mixed", 2048, 64)]
            assert double < mixed <= single

    def test_anchors(self, data15):
        assert data15.series[("lj", "single", 2048, 64)] == pytest.approx(115.2, rel=0.2)
        assert data15.series[("lj", "double", 2048, 64)] == pytest.approx(98.9, rel=0.2)
        assert data15.series[("rhodo", "single", 2048, 64)] == pytest.approx(11.5, rel=0.2)
        assert data15.series[("rhodo", "double", 2048, 64)] == pytest.approx(8.4, rel=0.2)


class TestFig16PrecisionGpu:
    @pytest.fixture(scope="class")
    def data16(self):
        return fig16.generate(sizes_k=(2048,), gpus=(8,))

    def test_lj_most_sensitive_rhodo_barely(self, data16):
        """Section 8: LJ-GPU is most precision sensitive; Rhodopsin-GPU
        barely changes."""
        lj_drop = (
            data16.series[("lj", "double", 2048, 8)]
            / data16.series[("lj", "single", 2048, 8)]
        )
        rhodo_drop = (
            data16.series[("rhodo", "double", 2048, 8)]
            / data16.series[("rhodo", "single", 2048, 8)]
        )
        assert lj_drop < 0.85
        assert rhodo_drop > 0.90

    def test_anchors(self, data16):
        assert data16.series[("lj", "single", 2048, 8)] == pytest.approx(170.0, rel=0.2)
        assert data16.series[("lj", "double", 2048, 8)] == pytest.approx(121.6, rel=0.2)


class TestHeadline:
    def test_turnaround_numbers(self):
        data = headline.generate()
        assert data.series["cpu_ns_per_day"] == pytest.approx(2.0, rel=0.2)
        assert data.series["gpu_ns_per_day"] == pytest.approx(2.8, rel=0.2)
        assert data.series["gpu_ns_per_day"] > data.series["cpu_ns_per_day"]

    def test_render(self):
        out = headline.generate().render()
        assert "ns/day" in out
