"""Render smoke tests: every figure module's text output is well-formed."""

import importlib

import pytest

REDUCED_KWARGS = {
    "fig03": dict(benchmarks=("lj",), sizes_k=(32,), ranks=(1, 8)),
    "fig04": dict(benchmarks=("lj",), sizes_k=(32,), ranks=(8,)),
    "fig05": dict(benchmarks=("lj",), sizes_k=(32,), ranks=(8,)),
    "fig06": dict(benchmarks=("lj",), sizes_k=(32,), ranks=(1, 8)),
    "fig07": dict(benchmarks=("lj",), sizes_k=(32,), gpus=(1, 2)),
    "fig08": dict(benchmarks=("rhodo",), sizes_k=(32,), gpus=(2,)),
    "fig09": dict(benchmarks=("lj",), sizes_k=(32,), gpus=(1, 2)),
    "fig10": dict(sizes_k=(32,), ranks=(1, 8), thresholds=(1e-4, 1e-6)),
    "fig11": dict(sizes_k=(32,), ranks=(8,), thresholds=(1e-4, 1e-6)),
    "fig12": dict(sizes_k=(32,), ranks=(8,), thresholds=(1e-6,)),
    "fig13": dict(sizes_k=(32,), gpus=(1, 2), thresholds=(1e-4, 1e-6)),
    "fig14": dict(sizes_k=(32,), thresholds=(1e-4, 1e-6)),
    "fig15": dict(benchmarks=("lj",), sizes_k=(32,), ranks=(8,)),
    "fig16": dict(benchmarks=("lj",), sizes_k=(32,), gpus=(2,)),
    "table2": {},
    "table3": {},
    "headline": {},
}


@pytest.mark.parametrize("name", sorted(REDUCED_KWARGS))
def test_render_well_formed(name):
    module = importlib.import_module(f"repro.figures.{name}")
    data = module.generate(**REDUCED_KWARGS[name])
    out = data.render()
    lines = out.splitlines()
    assert lines[0].startswith("===")
    assert data.figure_id in lines[0]
    assert len(lines) >= 3  # header + table
    assert data.series  # never empty


def test_render_without_renderer_is_header_only():
    from repro.figures.base import FigureData

    data = FigureData(figure_id="X", title="t")
    assert data.render() == "=== X: t ==="
