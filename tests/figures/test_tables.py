"""Tests for the Table 2 / Table 3 reproductions."""

import pytest

from repro.figures import table2, table3


class TestTable2:
    def test_columns_in_paper_order(self):
        data = table2.generate()
        assert list(data.series) == ["rhodo", "lj", "chain", "eam", "chute"]

    def test_row_values_match_paper(self):
        data = table2.generate()
        assert data.series["lj"]["Cutoff"] == "2.5 sigma"
        assert data.series["lj"]["Neighbors/atom"] == "55"
        assert data.series["rhodo"]["kspace_style"] == "pppm"
        assert data.series["rhodo"]["Kspace error"] == "1.0e-04"
        assert data.series["rhodo"]["pair_modify"] == "arithmetic"
        assert data.series["chute"]["Force field"] == "gran/hooke/history"
        assert data.series["eam"]["Integration"] == "NVE"

    def test_render_contains_grid(self):
        out = table2.generate().render()
        assert "Table 2" in out
        assert "Neighbors/atom" in out
        assert "rhodo" in out and "chute" in out

    def test_measured_neighbors_derive_from_geometry(self):
        """Table 2's neighbors/atom falls out of density x cutoff in the
        functional engine (small systems under-report a little)."""
        measured = table2.measure_neighbors("lj", 500)
        assert measured == pytest.approx(55, rel=0.06)
        measured = table2.measure_neighbors("eam", 500)
        assert measured == pytest.approx(45, rel=0.12)


class TestTable3:
    def test_sections_present(self):
        data = table3.generate()
        assert set(data.series) == {"cpu_specs", "gpu_specs", "instance_specs"}

    def test_render_contains_models(self):
        out = table3.generate().render()
        assert "Intel Xeon Platinum 8358" in out
        assert "Intel Xeon Platinum 8167M" in out
        assert "NVIDIA V100" in out
        assert "1024 GB DDR4" in out


class TestTable2BulkRhodo:
    def test_rhodo_neighbors_at_full_cutoff(self):
        """At liquid-water atom density with the full 10 Angstrom cutoff
        the proxy measures ~420 neighbors/atom — within 5% of Table 2's
        440 (the all-atom system is slightly denser and adds
        intramolecular partners)."""
        from repro.suite import get_benchmark

        sim = get_benchmark("rhodo").build(1536, n_solute_beads=0)
        sim.setup()
        assert sim.potentials[0].cutoff == pytest.approx(10.0)
        measured = sim.neighbor.stats.last_neighbors_per_atom
        assert measured == pytest.approx(440, rel=0.07)
