"""Tests for the simulated GPU-instance executor."""

import numpy as np
import pytest

from repro.gpu.executor import GpuModelConfig, simulate_gpu_run
from repro.platforms.instances import GPU_INSTANCE


class TestBasics:
    def test_chute_rejected(self):
        """Section 6: gran/hooke has no GPU pair style."""
        with pytest.raises(ValueError, match="unsupported"):
            simulate_gpu_run("chute", 32_000, 1)

    def test_too_many_gpus_rejected(self):
        with pytest.raises(ValueError):
            simulate_gpu_run("lj", 32_000, 9)

    def test_kspace_error_only_for_rhodo(self):
        with pytest.raises(ValueError):
            simulate_gpu_run("lj", 32_000, 2, kspace_error=1e-6)

    def test_deterministic(self):
        a = simulate_gpu_run("eam", 256_000, 4)
        b = simulate_gpu_run("eam", 256_000, 4)
        assert a.ts_per_s == b.ts_per_s

    def test_total_ranks_capped_at_48(self):
        """The paper found no more than 48 MPI ranks beneficial."""
        for gpus in (1, 2, 4, 6, 8):
            r = simulate_gpu_run("lj", 256_000, gpus)
            assert r.total_ranks <= 48
            assert r.total_ranks % gpus == 0

    def test_task_and_kernel_fractions_normalized(self):
        r = simulate_gpu_run("rhodo", 256_000, 4)
        assert sum(r.task_fractions().values()) == pytest.approx(1.0)
        assert sum(r.kernel_fractions().values()) == pytest.approx(1.0)

    def test_utilizations_bounded(self):
        r = simulate_gpu_run("lj", 2_048_000, 8)
        assert 0 < r.gpu_utilization <= 1.0
        assert 0 <= r.pcie_utilization <= 1.0


class TestPaperShapes:
    def test_memcpy_entries_reported(self):
        r = simulate_gpu_run("lj", 256_000, 2)
        assert r.kernel_seconds["[CUDA memcpy HtoD]"] > 0
        assert r.kernel_seconds["[CUDA memcpy DtoH]"] > 0

    def test_data_movement_majority_of_device_time(self):
        """Section 6.1: 'the majority of the time actively spent by the
        GPU is involved in memory movement primitives'."""
        r = simulate_gpu_run("lj", 2_048_000, 8)
        moved = sum(
            v for k, v in r.kernel_seconds.items() if k.startswith("[CUDA")
        )
        computed = sum(
            v for k, v in r.kernel_seconds.items() if not k.startswith("[CUDA")
        )
        assert moved > 0.5 * computed

    def test_eam_beats_chain_on_gpu(self):
        """Section 6.2: EAM outperforms Chain on the GPU instance."""
        for size in (256_000, 2_048_000):
            eam = simulate_gpu_run("eam", size, 8).ts_per_s
            chain = simulate_gpu_run("chain", size, 8).ts_per_s
            assert eam > chain

    def test_chain_beats_eam_on_cpu(self):
        """...contrary to the CPU instance ordering."""
        from repro.parallel import simulate_cpu_run

        eam = simulate_cpu_run("eam", 2_048_000, 64).ts_per_s
        chain = simulate_cpu_run("chain", 2_048_000, 64).ts_per_s
        assert chain > eam

    def test_rhodo_pair_share_below_quarter(self):
        """Section 6.1: the GPU pair kernel takes <25% for Rhodopsin."""
        r = simulate_gpu_run("rhodo", 2_048_000, 8)
        assert r.task_fractions()["Pair"] < 0.25

    def test_eam_still_pair_dominated_on_gpu(self):
        r = simulate_gpu_run("eam", 2_048_000, 8)
        fractions = r.task_fractions()
        assert fractions["Pair"] == max(fractions.values())

    def test_rhodo_modify_is_host_burden(self):
        """SHAKE has no GPU port: Modify stays relevant on the GPU node."""
        r = simulate_gpu_run("rhodo", 2_048_000, 8)
        assert r.task_fractions()["Modify"] > 0.10

    def test_neigh_kernel_breaking_point(self):
        """Section 6.1: the neighbor kernel leads only at 2048k atoms."""

        def top_kernel(n_atoms):
            r = simulate_gpu_run("rhodo", n_atoms, 8)
            compute = {
                k: v for k, v in r.kernel_seconds.items() if not k.startswith("[")
            }
            return max(compute, key=compute.get)

        assert top_kernel(864_000) in ("make_rho", "particle_map")
        assert top_kernel(2_048_000) == "calc_neigh_list_cell"

    def test_error_threshold_inflates_htod(self):
        """Section 7: tighter thresholds blow up CUDA memcpy HtoD."""
        base = simulate_gpu_run("rhodo", 2_048_000, 8)
        tight = simulate_gpu_run("rhodo", 2_048_000, 8, kspace_error=1e-7)
        assert (
            tight.kernel_seconds["[CUDA memcpy HtoD]"]
            > 10 * base.kernel_seconds["[CUDA memcpy HtoD]"]
        )

    def test_utilization_drops_with_tight_threshold(self):
        base = simulate_gpu_run("rhodo", 2_048_000, 8)
        tight = simulate_gpu_run("rhodo", 2_048_000, 8, kspace_error=1e-7)
        assert tight.gpu_utilization < base.gpu_utilization


class TestConfig:
    def test_ranks_for_divisibility(self):
        cfg = GpuModelConfig()
        for gpus in (1, 2, 4, 6, 8):
            total = cfg.ranks_for(gpus, GPU_INSTANCE)
            assert total % gpus == 0
            assert total <= 48

    def test_custom_config_respected(self):
        cfg = GpuModelConfig(max_total_ranks=8)
        r = simulate_gpu_run("lj", 256_000, 2, config=cfg)
        assert r.total_ranks == 8

    def test_power_includes_idle_devices(self):
        one = simulate_gpu_run("lj", 256_000, 1)
        # Even one active GPU pays the other seven's idle floor.
        assert one.power_watts > 7 * 40.0
