"""Tests for the GPU kernel catalogue and cost laws."""

import pytest

from repro.gpu.kernels import (
    DATA_MOVEMENT_ENTRIES,
    KERNELS_BY_BENCHMARK,
    GpuKernelCoefficients,
    kernel_seconds_per_step,
    pair_kernel_names,
)
from repro.perfmodel.workloads import get_workload


class TestCatalogue:
    def test_benchmark_coverage(self):
        assert set(KERNELS_BY_BENCHMARK) == {"lj", "chain", "eam", "rhodo"}

    def test_paper_kernel_names_present(self):
        assert "k_lj_fast" in KERNELS_BY_BENCHMARK["lj"]
        assert "k_eam_fast" in KERNELS_BY_BENCHMARK["eam"]
        assert "k_energy_fast" in KERNELS_BY_BENCHMARK["eam"]
        assert "k_charmm_long" in KERNELS_BY_BENCHMARK["rhodo"]
        assert "make_rho" in KERNELS_BY_BENCHMARK["rhodo"]
        assert "particle_map" in KERNELS_BY_BENCHMARK["rhodo"]
        for kernels in KERNELS_BY_BENCHMARK.values():
            assert "calc_neigh_list_cell" in kernels

    def test_data_movement_entries(self):
        assert "[CUDA memcpy HtoD]" in DATA_MOVEMENT_ENTRIES
        assert "[CUDA memcpy DtoH]" in DATA_MOVEMENT_ENTRIES
        assert "[CUDA memset]" in DATA_MOVEMENT_ENTRIES

    def test_pair_kernel_lookup(self):
        assert pair_kernel_names("lj") == ("k_lj_fast",)
        assert pair_kernel_names("eam") == ("k_eam_fast", "k_energy_fast")
        with pytest.raises(KeyError):
            pair_kernel_names("chute")


class TestCostLaws:
    def test_chute_unsupported(self):
        with pytest.raises(KeyError, match="does not support"):
            kernel_seconds_per_step(get_workload("chute"), 1000, "single")

    def test_pair_time_linear_in_atoms(self):
        w = get_workload("lj")
        t1 = kernel_seconds_per_step(w, 10_000, "single")["k_lj_fast"]
        t2 = kernel_seconds_per_step(w, 20_000, "single")["k_lj_fast"]
        assert t2 == pytest.approx(2 * t1)

    def test_double_precision_slows_pair_kernel(self):
        w = get_workload("lj")
        single = kernel_seconds_per_step(w, 10_000, "single")["k_lj_fast"]
        double = kernel_seconds_per_step(w, 10_000, "double")["k_lj_fast"]
        assert double > 1.3 * single

    def test_eam_split_exceeds_charmm_kernel(self):
        """Section 6.1: k_eam_fast + k_energy_fast together outlast
        k_charmm_long despite EAM's smaller neighbor count... per unit
        of pair work."""
        eam_w = get_workload("eam")
        rhodo_w = get_workload("rhodo")
        n = 100_000
        eam_t = kernel_seconds_per_step(eam_w, n, "single")
        rhodo_t = kernel_seconds_per_step(rhodo_w, n, "single")
        eam_pair = eam_t["k_eam_fast"] + eam_t["k_energy_fast"]
        # Per pair interaction, the EAM kernels are less efficient.
        eam_per_pair = eam_pair / (n * eam_w.neighbors_per_atom)
        charmm_per_pair = rhodo_t["k_charmm_long"] / (n * rhodo_w.neighbors_per_atom)
        assert eam_per_pair > charmm_per_pair

    def test_grid_kernels_only_for_rhodo(self):
        lj_t = kernel_seconds_per_step(get_workload("lj"), 10_000, "single")
        assert "make_rho" not in lj_t
        rhodo_t = kernel_seconds_per_step(get_workload("rhodo"), 10_000, "single")
        assert rhodo_t["make_rho"] > 0
        assert rhodo_t["particle_map"] > 0
        assert rhodo_t["interp"] > 0

    def test_all_times_non_negative(self):
        for name in ("lj", "chain", "eam", "rhodo"):
            times = kernel_seconds_per_step(get_workload(name), 50_000, "mixed")
            assert all(v >= 0 for v in times.values())

    def test_custom_coefficients(self):
        w = get_workload("lj")
        fast = GpuKernelCoefficients(pair_per_interaction=1e-11)
        default = kernel_seconds_per_step(w, 10_000, "single")["k_lj_fast"]
        tuned = kernel_seconds_per_step(w, 10_000, "single", fast)["k_lj_fast"]
        assert tuned < default
