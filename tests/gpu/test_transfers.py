"""Tests for the PCIe transfer model."""

import pytest

from repro.gpu.transfers import PcieModel


class TestEffectiveBandwidth:
    def test_single_device_limited_by_link(self):
        pcie = PcieModel()
        assert pcie.effective_bandwidth(1) <= pcie.link_bandwidth_b_s

    def test_contention_reduces_per_device_rate(self):
        """Section 6.2: devices share the host's aggregate bandwidth."""
        pcie = PcieModel()
        assert pcie.effective_bandwidth(8) < pcie.effective_bandwidth(2)

    def test_invalid_device_count(self):
        with pytest.raises(ValueError):
            PcieModel().effective_bandwidth(0)


class TestTransferSeconds:
    def test_latency_dominates_small_payloads(self):
        pcie = PcieModel()
        t = pcie.transfer_seconds(1024.0, 1, n_transfers=10)
        assert t == pytest.approx(10 * pcie.transfer_latency_s, rel=0.01)

    def test_bandwidth_dominates_large_payloads(self):
        pcie = PcieModel()
        payload = 1e9
        t = pcie.transfer_seconds(payload, 1, n_transfers=1)
        assert t == pytest.approx(payload / pcie.effective_bandwidth(1), rel=0.01)

    def test_zero_transfers_is_free(self):
        assert PcieModel().transfer_seconds(0.0, 4, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PcieModel().transfer_seconds(-1.0, 1)

    def test_more_devices_slower_same_payload(self):
        pcie = PcieModel()
        assert pcie.transfer_seconds(1e8, 8) > pcie.transfer_seconds(1e8, 1)


class TestUtilization:
    def test_underutilization_for_chunked_transfers(self):
        """Many small memcpys never saturate the link — the paper's
        'bandwidth is under-utilized' observation."""
        pcie = PcieModel()
        payload = 1e6
        elapsed = pcie.transfer_seconds(payload, 8, n_transfers=12)
        assert pcie.utilization(payload, elapsed, 8) < 0.5

    def test_bounded_by_one(self):
        assert PcieModel().utilization(1e12, 1e-3, 1) == 1.0

    def test_zero_elapsed(self):
        assert PcieModel().utilization(1e6, 0.0, 1) == 0.0
