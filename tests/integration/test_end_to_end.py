"""Cross-layer integration scenarios."""

import numpy as np
import pytest

from repro.core.aggregator import RunsTable
from repro.core.artifact import ArtifactLayout
from repro.core.experiment import ExperimentSpec, Mode
from repro.core.runner import run_experiment
from repro.md.computes import MeanSquaredDisplacement, RadialDistribution
from repro.md.dump import XyzDumpWriter, read_xyz_frames
from repro.parallel import simulate_cpu_run
from repro.perfmodel.workloads import get_workload
from repro.suite import get_benchmark


class TestFunctionalPipeline:
    """A complete production-style run: dynamics + analysis + output."""

    def test_lj_run_with_dump_and_analysis(self, tmp_path):
        sim = get_benchmark("lj").build(400)
        sim.setup()
        writer = XyzDumpWriter(tmp_path / "traj.xyz", every=20)
        msd = MeanSquaredDisplacement(sim.system)
        rdf = RadialDistribution(r_max=2.8, n_bins=56)

        for step in range(1, 101):
            sim.step()
            if writer.should_dump(step):
                writer.write_frame(sim.system, step)
            if step % 25 == 0:
                rdf.sample(sim.system)
                msd.sample(sim.system, step * sim.dt)

        # Trajectory on disk matches the final state.
        frames = read_xyz_frames(tmp_path / "traj.xyz")
        assert len(frames) == 5
        assert np.allclose(frames[-1][1], sim.system.positions, atol=1e-7)
        # Liquid structure: excluded core, first shell near sigma.
        g = rdf.g_of_r()
        r = rdf.bin_centers
        assert g[r < 0.8].max() == 0.0
        assert g.max() > 1.5
        # The melt diffuses.
        times, values = msd.series()
        assert values[-1] > values[0]
        # Energy stayed finite and the thermo log filled in.
        assert np.isfinite(sim.total_energy())
        assert len(sim.thermo) == 1  # default interval 100

    def test_rhodo_full_stack_run(self):
        """PPPM + SHAKE + NPT + bonded terms together, stable."""
        sim = get_benchmark("rhodo").build(300)
        sim.run(30)
        assert sim.counts.kspace_grid_points > 0
        assert sim.counts.shake_iterations > 0
        assert sim.constraints.max_violation(sim.system) < 1e-3
        breakdown = sim.task_breakdown()
        assert breakdown["Kspace"] > 0
        assert breakdown["Modify"] > 0


class TestEngineModelConsistency:
    """The performance model's workload inputs match what the engine
    actually measures."""

    def test_neighbors_per_atom(self):
        for bench, tolerance in (("lj", 0.06), ("eam", 0.12)):
            sim = get_benchmark(bench).build(500)
            sim.setup()
            measured = sim.neighbor.stats.last_neighbors_per_atom
            modelled = get_workload(bench).neighbors_per_atom
            assert measured == pytest.approx(modelled, rel=tolerance)

    def test_pair_interactions_per_step(self):
        sim = get_benchmark("lj").build(500)
        sim.run(10)
        measured = sim.counts.pair_interactions_per_step / sim.system.n_atoms
        modelled = get_workload("lj").pair_interactions_per_atom()
        assert measured == pytest.approx(modelled, rel=0.1)

    def test_serial_breakdown_ordering_matches(self):
        """Model and the numpy_ref engine agree Pair >> Neigh > Modify.

        The model mirrors the paper's LAMMPS breakdown, where Pair
        dominates outright; that cost profile corresponds to the
        engine's numpy_ref oracle backend.  The optimized default
        backend deliberately shrinks Pair, so its share at this small
        size depends on the backend and only the weaker ordering versus
        Modify is asserted for it.
        """
        model = simulate_cpu_run("lj", 2_048_000, 1).task_fractions()
        ref = get_benchmark("lj").build(500)
        for potential in ref.potentials:
            potential.backend = "numpy_ref"
        ref.run(30)
        for fractions in (ref.task_breakdown(), model):
            assert fractions["Pair"] > 0.5
            assert fractions["Pair"] > fractions["Neigh"]
            assert fractions["Pair"] > fractions["Modify"]
        fast = get_benchmark("lj").build(500)
        fast.run(30)
        assert fast.task_breakdown()["Pair"] > fast.task_breakdown()["Modify"]

    def test_chute_full_list_accounting(self):
        """Newton-off: the engine counts both pair directions, like the
        model's un-halved pair work."""
        sim = get_benchmark("chute").build(150)
        sim.run(5)
        stored_half_pairs = len(sim.neighbor.pair_i) / 2
        per_step = sim.counts.pair_interactions_per_step
        assert per_step >= stored_half_pairs  # both directions counted


class TestCampaignPipeline:
    def test_campaign_to_artifact_and_back(self, tmp_path):
        table = RunsTable()
        layout = ArtifactLayout(tmp_path)
        for spec in (
            ExperimentSpec("lj", "cpu", 32, 8, mode=Mode.PROFILING),
            ExperimentSpec("lj", "cpu", 32, 16, mode=Mode.PROFILING),
            ExperimentSpec("lj", "gpu", 32, 2, mode=Mode.PROFILING),
        ):
            record = run_experiment(spec)
            table.add(record)
            layout.write_profile(record)
        layout.write_runs(table)

        cpu_runs = layout.load_runs("cpu")
        series = cpu_runs.series("ts_per_s", benchmark="lj", size_k=32)
        assert series[1][1] > series[0][1]  # 16 ranks beat 8

        profile = layout.load_profile("lj", 32, 8)
        fresh = run_experiment(ExperimentSpec("lj", "cpu", 32, 8, mode=Mode.PROFILING))
        assert profile["ts_per_s"] == pytest.approx(fresh.ts_per_s)

    def test_runs_csv_roundtrip_preserves_metrics(self, tmp_path):
        record = run_experiment(
            ExperimentSpec("rhodo", "cpu", 32, 8, kspace_error=1e-6, mode=Mode.PROFILING)
        )
        table = RunsTable([record])
        table.to_csv(tmp_path / "runs.csv")
        loaded = RunsTable.from_csv(tmp_path / "runs.csv")
        restored = next(iter(loaded))
        assert restored.label == "rhodo-e-6"
        assert restored.mpi_function_fractions == pytest.approx(
            record.mpi_function_fractions
        )
