"""Smoke tests: every example script runs end to end.

Each example is executed in-process via runpy (so the shared campaign
cache keeps them fast); scripts that write output get a tmp directory.
The slow trajectory-analysis example is exercised through its
``analyze`` function on a reduced workload instead of the full script.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_SCRIPTS = (
    "quickstart.py",
    "physics_showcase.py",
    "precision_study.py",
    "error_threshold_study.py",
    "gpu_campaign.py",
    "scale_out_study.py",
    "next_platform_projections.py",
)


@pytest.mark.parametrize("script", FAST_SCRIPTS)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_cpu_campaign_writes_artifact(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["cpu_campaign.py", str(tmp_path)])
    runpy.run_path(str(EXAMPLES_DIR / "cpu_campaign.py"), run_name="__main__")
    assert (tmp_path / "lammps" / "runs.csv").exists()
    assert "Figure 6" in capsys.readouterr().out


def test_ablation_studies_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["ablation_studies.py"])
    runpy.run_path(str(EXAMPLES_DIR / "ablation_studies.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Neighbor-skin" in out
    assert "-DFFT_SINGLE" in out


def test_full_reproduction_report(tmp_path, capsys, monkeypatch):
    report = tmp_path / "report.md"
    monkeypatch.setattr(sys, "argv", ["full_reproduction.py", str(report)])
    runpy.run_path(str(EXAMPLES_DIR / "full_reproduction.py"), run_name="__main__")
    text = report.read_text()
    assert "Table 2" in text
    assert "Figure 16" in text
    assert "paper" in text  # the anchor scoreboard


def test_trajectory_analysis_function(tmp_path):
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        import trajectory_analysis

        result = trajectory_analysis.analyze("lj", 300, 120, tmp_path)
    finally:
        sys.path.remove(str(EXAMPLES_DIR))
    assert result["frames"] >= 1
    assert (tmp_path / "lj.xyz").exists()
    assert (tmp_path / "lj.npz").exists()
