"""Tests for the particle store and topology."""

import numpy as np
import pytest

from repro.md.atoms import AtomSystem, Topology
from repro.md.box import Box


@pytest.fixture
def box():
    return Box([10.0, 10.0, 10.0])


class TestTopology:
    def test_empty_by_default(self):
        topo = Topology()
        assert topo.n_bonds == 0
        assert topo.n_angles == 0

    def test_bond_types_default_to_zero(self):
        topo = Topology(bonds=np.array([[0, 1], [1, 2]]))
        assert topo.bond_types.tolist() == [0, 0]

    def test_mismatched_bond_types_rejected(self):
        with pytest.raises(ValueError):
            Topology(bonds=np.array([[0, 1]]), bond_types=np.array([0, 1]))

    def test_validate_catches_out_of_range(self):
        topo = Topology(bonds=np.array([[0, 5]]))
        with pytest.raises(ValueError):
            topo.validate(3)

    def test_validate_accepts_valid(self):
        topo = Topology(bonds=np.array([[0, 1]]), angles=np.array([[0, 1, 2]]))
        topo.validate(3)


class TestConstruction:
    def test_defaults(self, box):
        system = AtomSystem(np.zeros((3, 3)) + 1.0, box)
        assert system.n_atoms == 3
        assert np.allclose(system.masses, 1.0)
        assert np.allclose(system.charges, 0.0)
        assert system.types.tolist() == [0, 0, 0]
        assert not system.is_granular

    def test_positions_wrapped_on_construction(self, box):
        system = AtomSystem(np.array([[12.0, -3.0, 5.0]]), box)
        assert np.allclose(system.positions, [[2.0, 7.0, 5.0]])
        assert system.images.tolist() == [[1, -1, 0]]

    def test_empty_rejected(self, box):
        with pytest.raises(ValueError):
            AtomSystem(np.empty((0, 3)), box)

    def test_non_positive_mass_rejected(self, box):
        with pytest.raises(ValueError):
            AtomSystem(np.zeros((2, 3)), box, masses=[1.0, 0.0])

    def test_scalar_mass_broadcast(self, box):
        system = AtomSystem(np.zeros((4, 3)), box, masses=2.5)
        assert np.allclose(system.masses, 2.5)

    def test_granular_gets_angular_state(self, box):
        system = AtomSystem(np.zeros((2, 3)) + 1, box, radii=0.5)
        assert system.is_granular
        assert system.omega is not None and system.omega.shape == (2, 3)
        assert system.torques is not None

    def test_topology_validated(self, box):
        with pytest.raises(ValueError):
            AtomSystem(
                np.zeros((2, 3)), box, topology=Topology(bonds=np.array([[0, 7]]))
            )


class TestThermodynamics:
    def test_kinetic_energy(self, box):
        system = AtomSystem(np.zeros((2, 3)), box, masses=[1.0, 2.0])
        system.velocities = np.array([[1.0, 0, 0], [0, 2.0, 0]])
        assert system.kinetic_energy() == pytest.approx(0.5 * 1 + 0.5 * 2 * 4)

    def test_temperature_of_still_system_is_zero(self, box):
        system = AtomSystem(np.zeros((10, 3)), box)
        assert system.temperature() == 0.0

    def test_seed_velocities_hits_target(self, box, rng=np.random.default_rng(1)):
        system = AtomSystem(rng.uniform(0, 10, (200, 3)), box)
        system.seed_velocities(1.44, rng)
        assert system.temperature() == pytest.approx(1.44, rel=1e-10)

    def test_seed_velocities_zero_momentum(self, box):
        rng = np.random.default_rng(2)
        system = AtomSystem(rng.uniform(0, 10, (50, 3)), box, masses=rng.uniform(1, 3, 50))
        system.seed_velocities(2.0, rng)
        assert np.allclose(system.momentum(), 0.0, atol=1e-10)

    def test_constraints_reduce_dof(self, box):
        rng = np.random.default_rng(3)
        system = AtomSystem(rng.uniform(0, 10, (30, 3)), box)
        system.seed_velocities(1.0, rng)
        assert system.temperature(n_constraints=10) > system.temperature()

    def test_density(self, box):
        system = AtomSystem(np.zeros((100, 3)), box)
        assert system.density() == pytest.approx(0.1)

    def test_zero_momentum(self, box):
        rng = np.random.default_rng(4)
        system = AtomSystem(rng.uniform(0, 10, (20, 3)), box)
        system.velocities = rng.normal(size=(20, 3)) + 1.0
        system.zero_momentum()
        assert np.allclose(system.momentum(), 0.0, atol=1e-12)


class TestMutation:
    def test_wrap_updates_images(self, box):
        system = AtomSystem(np.array([[5.0, 5.0, 5.0]]), box)
        system.positions[0, 0] = 13.0
        system.wrap()
        assert np.allclose(system.positions[0], [3.0, 5.0, 5.0])
        assert system.images[0].tolist() == [1, 0, 0]

    def test_unwrapped_positions(self, box):
        system = AtomSystem(np.array([[5.0, 5.0, 5.0]]), box)
        system.positions[0, 0] = 13.0
        system.wrap()
        assert np.allclose(system.unwrapped_positions()[0], [13.0, 5.0, 5.0])

    def test_copy_is_deep(self, box):
        system = AtomSystem(np.ones((2, 3)), box, charges=[1.0, -1.0])
        clone = system.copy()
        clone.positions[0, 0] = 9.0
        clone.charges[0] = 5.0
        assert system.positions[0, 0] == pytest.approx(1.0)
        assert system.charges[0] == pytest.approx(1.0)
