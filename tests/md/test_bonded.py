"""Tests for bonded interactions: harmonic bond/angle and FENE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.atoms import AtomSystem, Topology
from repro.md.bonded import FENEBond, HarmonicAngle, HarmonicBond
from repro.md.box import Box

from tests.conftest import finite_difference_forces


def _bonded_system(positions, bonds, angles=None):
    box = Box([20.0, 20.0, 20.0])
    topo = Topology(
        bonds=np.array(bonds, dtype=np.int64).reshape(-1, 2),
        angles=np.empty((0, 3), dtype=np.int64)
        if angles is None
        else np.array(angles, dtype=np.int64),
    )
    return AtomSystem(np.array(positions, dtype=float), box, topology=topo)


class TestHarmonicBond:
    def test_zero_at_rest_length(self):
        system = _bonded_system([[5, 5, 5], [6.2, 5, 5]], [[0, 1]])
        result = HarmonicBond(k=10.0, r0=1.2).compute(system)
        assert result.energy == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(system.forces, 0.0, atol=1e-12)

    def test_lammps_energy_convention(self):
        """E = K (r - r0)^2 with no 1/2 prefactor."""
        system = _bonded_system([[5, 5, 5], [6.5, 5, 5]], [[0, 1]])
        result = HarmonicBond(k=10.0, r0=1.0).compute(system)
        assert result.energy == pytest.approx(10.0 * 0.25)

    def test_stretched_bond_pulls_inward(self):
        system = _bonded_system([[5, 5, 5], [6.5, 5, 5]], [[0, 1]])
        HarmonicBond(k=10.0, r0=1.0).compute(system)
        assert system.forces[0, 0] > 0
        assert system.forces[1, 0] < 0

    def test_per_type_coefficients(self):
        box = Box([20, 20, 20])
        topo = Topology(
            bonds=np.array([[0, 1], [1, 2]]), bond_types=np.array([0, 1])
        )
        system = AtomSystem(
            np.array([[5.0, 5, 5], [6.5, 5, 5], [8.0, 5, 5]]), box, topology=topo
        )
        bond = HarmonicBond(k=np.array([10.0, 20.0]), r0=np.array([1.0, 1.0]))
        result = bond.compute(system)
        assert result.energy == pytest.approx(10 * 0.25 + 20 * 0.25)

    def test_bond_across_periodic_boundary(self):
        system = _bonded_system([[0.4, 5, 5], [19.6, 5, 5]], [[0, 1]])
        result = HarmonicBond(k=10.0, r0=0.8).compute(system)
        assert result.energy == pytest.approx(0.0, abs=1e-12)

    def test_empty_topology_noop(self):
        box = Box([20, 20, 20])
        system = AtomSystem(np.ones((3, 3)), box)
        result = HarmonicBond().compute(system)
        assert result.energy == 0.0 and result.interactions == 0


class TestFENE:
    def test_minimum_near_kremer_grest_bond_length(self):
        """The FENE + WCA sum has its minimum near r = 0.97 sigma."""
        fene = FENEBond()
        r = np.linspace(0.8, 1.2, 400)
        energies = []
        for ri in r:
            system = _bonded_system([[5, 5, 5], [5 + ri, 5, 5]], [[0, 1]])
            energies.append(fene.compute(system).energy)
        r_min = r[np.argmin(energies)]
        assert r_min == pytest.approx(0.97, abs=0.02)

    def test_overstretch_raises(self):
        system = _bonded_system([[5, 5, 5], [6.6, 5, 5]], [[0, 1]])
        with pytest.raises(FloatingPointError, match="overstretched"):
            FENEBond(r0=1.5).compute(system)

    def test_spring_is_attractive_beyond_wca(self):
        system = _bonded_system([[5, 5, 5], [6.3, 5, 5]], [[0, 1]])
        FENEBond().compute(system)
        assert system.forces[0, 0] > 0  # pulled toward partner

    @given(r=st.floats(0.85, 1.35))
    @settings(max_examples=15, deadline=None)
    def test_forces_match_finite_differences(self, r):
        fene = FENEBond()
        positions = np.array([[5.0, 5, 5], [5.0 + r, 5, 5]])

        def energy(pos):
            system = _bonded_system(pos, [[0, 1]])
            return fene.compute(system).energy

        system = _bonded_system(positions, [[0, 1]])
        fene.compute(system)
        reference = finite_difference_forces(energy, positions, h=1e-7)
        scale = max(1.0, float(np.abs(reference).max()))
        assert np.allclose(system.forces, reference, atol=1e-4 * scale)


class TestHarmonicAngle:
    def test_zero_at_equilibrium_angle(self):
        theta0 = np.deg2rad(90.0)
        system = _bonded_system(
            [[6, 5, 5], [5, 5, 5], [5, 6, 5]], [], angles=[[0, 1, 2]]
        )
        result = HarmonicAngle(k=10.0, theta0=theta0).compute(system)
        assert result.energy == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(system.forces, 0.0, atol=1e-10)

    def test_energy_convention(self):
        theta0 = np.deg2rad(120.0)
        system = _bonded_system(
            [[6, 5, 5], [5, 5, 5], [5, 6, 5]], [], angles=[[0, 1, 2]]
        )
        result = HarmonicAngle(k=10.0, theta0=theta0).compute(system)
        expected = 10.0 * (np.pi / 2 - theta0) ** 2
        assert result.energy == pytest.approx(expected)

    def test_forces_sum_to_zero(self):
        rng = np.random.default_rng(12)
        positions = rng.uniform(4, 7, (3, 3))
        system = _bonded_system(positions, [], angles=[[0, 1, 2]])
        HarmonicAngle(k=5.0).compute(system)
        assert np.allclose(system.forces.sum(axis=0), 0.0, atol=1e-10)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_forces_match_finite_differences(self, seed):
        rng = np.random.default_rng(seed)
        positions = np.array([[5.0, 5, 5], [6.0, 5, 5], [6.0, 6, 5]])
        positions += rng.uniform(-0.3, 0.3, positions.shape)
        angle = HarmonicAngle(k=7.0, theta0=np.deg2rad(100.0))

        def energy(pos):
            system = _bonded_system(pos, [], angles=[[0, 1, 2]])
            return angle.compute(system).energy

        system = _bonded_system(positions, [], angles=[[0, 1, 2]])
        angle.compute(system)
        reference = finite_difference_forces(energy, positions, h=1e-6)
        scale = max(1.0, float(np.abs(reference).max()))
        assert np.allclose(system.forces, reference, atol=1e-4 * scale)

    def test_no_torque_on_isolated_triplet(self):
        """Internal forces exert no net torque about the centre of mass."""
        rng = np.random.default_rng(13)
        positions = np.array([[5.0, 5, 5], [6.0, 5, 5], [6.0, 6, 5]])
        positions += rng.uniform(-0.2, 0.2, positions.shape)
        system = _bonded_system(positions, [], angles=[[0, 1, 2]])
        HarmonicAngle(k=5.0).compute(system)
        com = positions.mean(axis=0)
        torque = np.sum(np.cross(positions - com, system.forces), axis=0)
        assert np.allclose(torque, 0.0, atol=1e-10)
