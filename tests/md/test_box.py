"""Tests for the periodic simulation box."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.box import Box


class TestConstruction:
    def test_lengths_stored(self):
        box = Box([1.0, 2.0, 3.0])
        assert np.allclose(box.lengths, [1.0, 2.0, 3.0])

    def test_default_fully_periodic(self):
        assert Box([1, 1, 1]).periodic.all()

    def test_non_positive_length_rejected(self):
        with pytest.raises(ValueError):
            Box([1.0, 0.0, 1.0])
        with pytest.raises(ValueError):
            Box([-1.0, 1.0, 1.0])

    def test_volume(self):
        assert Box([2.0, 3.0, 4.0]).volume == pytest.approx(24.0)

    def test_upper_corner_with_origin(self):
        box = Box([2.0, 2.0, 2.0], origin=[1.0, 1.0, 1.0])
        assert np.allclose(box.upper, [3.0, 3.0, 3.0])

    def test_copy_is_independent(self):
        box = Box([2.0, 2.0, 2.0])
        clone = box.copy()
        clone.scale(2.0)
        assert np.allclose(box.lengths, 2.0)
        assert np.allclose(clone.lengths, 4.0)


class TestWrap:
    def test_wrap_inside_unchanged(self):
        box = Box([10.0, 10.0, 10.0])
        p = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(box.wrap(p), p)

    def test_wrap_beyond_upper(self):
        box = Box([10.0, 10.0, 10.0])
        assert np.allclose(box.wrap(np.array([[11.0, 0.0, 0.0]])), [[1.0, 0.0, 0.0]])

    def test_wrap_negative(self):
        box = Box([10.0, 10.0, 10.0])
        assert np.allclose(box.wrap(np.array([[-1.0, 0.0, 0.0]])), [[9.0, 0.0, 0.0]])

    def test_non_periodic_dimension_passthrough(self):
        box = Box([10.0, 10.0, 10.0], periodic=[True, True, False])
        wrapped = box.wrap(np.array([[11.0, 0.0, 12.0]]))
        assert np.allclose(wrapped, [[1.0, 0.0, 12.0]])

    def test_wrap_with_images_counts_crossings(self):
        box = Box([10.0, 10.0, 10.0])
        images = np.zeros((1, 3), dtype=np.int64)
        wrapped, images = box.wrap_with_images(np.array([[25.0, -5.0, 3.0]]), images)
        assert np.allclose(wrapped, [[5.0, 5.0, 3.0]])
        assert images.tolist() == [[2, -1, 0]]

    def test_unwrap_roundtrip(self):
        box = Box([10.0, 10.0, 10.0])
        original = np.array([[25.0, -5.0, 3.0]])
        images = np.zeros((1, 3), dtype=np.int64)
        wrapped, images = box.wrap_with_images(original, images)
        assert np.allclose(wrapped + images * box.lengths, original)


class TestMinimumImage:
    def test_short_displacement_unchanged(self):
        box = Box([10.0, 10.0, 10.0])
        dr = np.array([[1.0, -2.0, 3.0]])
        assert np.allclose(box.minimum_image(dr), dr)

    def test_long_displacement_folded(self):
        box = Box([10.0, 10.0, 10.0])
        assert np.allclose(box.minimum_image(np.array([[9.0, 0.0, 0.0]])), [[-1.0, 0.0, 0.0]])

    def test_distance_across_boundary(self):
        box = Box([10.0, 10.0, 10.0])
        a = np.array([[0.5, 0.0, 0.0]])
        b = np.array([[9.5, 0.0, 0.0]])
        assert box.distance(a, b) == pytest.approx(1.0)

    def test_non_periodic_not_folded(self):
        box = Box([10.0, 10.0, 10.0], periodic=[False, True, True])
        dr = np.array([[9.0, 9.0, 0.0]])
        out = box.minimum_image(dr)
        assert np.allclose(out, [[9.0, -1.0, 0.0]])

    @given(
        coords=st.lists(
            st.tuples(
                st.floats(-50, 50, allow_nan=False),
                st.floats(-50, 50, allow_nan=False),
                st.floats(-50, 50, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_minimum_image_bounded_by_half_box(self, coords):
        """Property: folded components never exceed L/2 in magnitude."""
        box = Box([7.0, 11.0, 13.0])
        dr = np.array(coords, dtype=float)
        folded = box.minimum_image(dr)
        assert np.all(np.abs(folded) <= 0.5 * box.lengths + 1e-9)

    @given(
        x=st.floats(-100, 100, allow_nan=False),
        y=st.floats(-100, 100, allow_nan=False),
        z=st.floats(-100, 100, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_wrap_lands_inside_box(self, x, y, z):
        box = Box([7.0, 11.0, 13.0])
        wrapped = box.wrap(np.array([[x, y, z]]))
        assert np.all(wrapped >= -1e-9)
        assert np.all(wrapped <= box.lengths + 1e-9)


class TestScale:
    def test_isotropic_scale(self):
        box = Box([2.0, 2.0, 2.0])
        box.scale(1.5)
        assert np.allclose(box.lengths, 3.0)

    def test_anisotropic_scale(self):
        box = Box([2.0, 2.0, 2.0])
        box.scale(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(box.lengths, [2.0, 4.0, 6.0])

    def test_non_positive_factor_rejected(self):
        with pytest.raises(ValueError):
            Box([1, 1, 1]).scale(0.0)
