"""Tests for the CHARMM switched-LJ + long-range-Coulomb pair style."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import erfc

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.neighbor import NeighborList
from repro.md.potentials.charmm import CharmmCoulLong, charmm_switch

from tests.conftest import finite_difference_forces


class TestSwitchFunction:
    def test_one_below_inner(self):
        s, ds = charmm_switch(np.array([4.0]), 8.0, 10.0)
        assert s[0] == pytest.approx(1.0)
        assert ds[0] == pytest.approx(0.0)

    def test_zero_beyond_outer(self):
        s, ds = charmm_switch(np.array([121.0]), 8.0, 10.0)
        assert s[0] == pytest.approx(0.0)
        assert ds[0] == pytest.approx(0.0)

    def test_continuous_at_boundaries(self):
        eps = 1e-9
        s_in, _ = charmm_switch(np.array([(8.0 + eps) ** 2]), 8.0, 10.0)
        assert s_in[0] == pytest.approx(1.0, abs=1e-6)
        s_out, _ = charmm_switch(np.array([(10.0 - eps) ** 2]), 8.0, 10.0)
        assert s_out[0] == pytest.approx(0.0, abs=1e-6)

    @given(r=st.floats(8.01, 9.99))
    @settings(max_examples=30, deadline=None)
    def test_monotonically_decreasing_in_window(self, r):
        s1, _ = charmm_switch(np.array([r * r]), 8.0, 10.0)
        s2, _ = charmm_switch(np.array([(r + 0.005) ** 2]), 8.0, 10.0)
        assert s2[0] <= s1[0]

    @given(r=st.floats(8.05, 9.95))
    @settings(max_examples=20, deadline=None)
    def test_derivative_matches_finite_difference(self, r):
        h = 1e-6
        _, ds = charmm_switch(np.array([r * r]), 8.0, 10.0)
        sp, _ = charmm_switch(np.array([(r + h) ** 2]), 8.0, 10.0)
        sm, _ = charmm_switch(np.array([(r - h) ** 2]), 8.0, 10.0)
        assert ds[0] == pytest.approx((sp[0] - sm[0]) / (2 * h), abs=1e-5)


def _dimer_system(r, charges=(1.0, -1.0)):
    box = Box([40.0, 40.0, 40.0])
    positions = np.array([[15.0, 20, 20], [15.0 + r, 20, 20]])
    return AtomSystem(positions, box, charges=np.array(charges))


class TestCoulomb:
    def test_plain_coulomb_energy(self):
        pot = CharmmCoulLong(epsilon=[0.0], sigma=[1.0], lj_inner=8.0, cutoff=10.0)
        system = _dimer_system(2.0)
        nlist = NeighborList(10.0, 1.0)
        nlist.build(system)
        assert pot.energy_only(system, nlist) == pytest.approx(-0.5)

    def test_erfc_screened_energy(self):
        alpha = 0.3
        pot = CharmmCoulLong(
            epsilon=[0.0], sigma=[1.0], lj_inner=8.0, cutoff=10.0, alpha=alpha
        )
        system = _dimer_system(2.0)
        nlist = NeighborList(10.0, 1.0)
        nlist.build(system)
        expected = -erfc(alpha * 2.0) / 2.0
        assert pot.energy_only(system, nlist) == pytest.approx(expected)

    def test_opposite_charges_attract(self):
        pot = CharmmCoulLong(epsilon=[0.0], sigma=[1.0], lj_inner=8.0, cutoff=10.0)
        system = _dimer_system(3.0)
        nlist = NeighborList(10.0, 1.0)
        nlist.build(system)
        system.forces[:] = 0.0
        pot.compute(system, nlist)
        assert system.forces[0, 0] > 0  # pulled toward the partner

    def test_like_charges_repel(self):
        pot = CharmmCoulLong(epsilon=[0.0], sigma=[1.0], lj_inner=8.0, cutoff=10.0)
        system = _dimer_system(3.0, charges=(1.0, 1.0))
        nlist = NeighborList(10.0, 1.0)
        nlist.build(system)
        system.forces[:] = 0.0
        pot.compute(system, nlist)
        assert system.forces[0, 0] < 0

    def test_coulomb_constant_scales_energy(self):
        base = CharmmCoulLong(epsilon=[0.0], sigma=[1.0], lj_inner=8.0, cutoff=10.0)
        scaled = CharmmCoulLong(
            epsilon=[0.0], sigma=[1.0], lj_inner=8.0, cutoff=10.0, coulomb_constant=332.0
        )
        system = _dimer_system(2.0)
        nlist = NeighborList(10.0, 1.0)
        nlist.build(system)
        assert scaled.energy_only(system, nlist) == pytest.approx(
            332.0 * base.energy_only(system, nlist)
        )


class TestValidation:
    def test_inner_must_be_below_outer(self):
        with pytest.raises(ValueError):
            CharmmCoulLong(lj_inner=10.0, cutoff=10.0)

    def test_coul_cutoff_cannot_exceed_lj_cutoff(self):
        with pytest.raises(ValueError):
            CharmmCoulLong(lj_inner=8.0, cutoff=10.0, coul_cutoff=12.0)


class TestForces:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_forces_match_finite_differences(self, seed):
        """Property: switched LJ + erfc Coulomb forces equal -grad E."""
        rng = np.random.default_rng(seed)
        box = Box([24.0, 24.0, 24.0])
        positions = rng.uniform(2.0, 22.0, (8, 3))
        charges = rng.normal(size=8)
        charges -= charges.mean()
        pot = CharmmCoulLong(
            epsilon=[0.2], sigma=[3.0], lj_inner=8.0, cutoff=10.0, alpha=0.25
        )

        def energy(pos):
            system = AtomSystem(pos, box, charges=charges)
            nlist = NeighborList(10.0, 1.0)
            nlist.build(system)
            return pot.energy_only(system, nlist)

        system = AtomSystem(positions, box, charges=charges)
        nlist = NeighborList(10.0, 1.0)
        nlist.build(system)
        system.forces[:] = 0.0
        pot.compute(system, nlist)
        reference = finite_difference_forces(energy, system.positions, h=1e-5)
        scale = max(1.0, float(np.abs(reference).max()))
        assert np.allclose(system.forces, reference, atol=2e-4 * scale)

    def test_arithmetic_mixing_cross_sigma(self):
        pot = CharmmCoulLong(
            epsilon=np.array([1.0, 1.0]),
            sigma=np.array([2.0, 4.0]),
            lj_inner=8.0,
            cutoff=10.0,
        )
        assert pot.sigma_table[0, 1] == pytest.approx(3.0)
