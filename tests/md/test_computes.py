"""Tests for the analysis computes (RDF, MSD, VACF)."""

import numpy as np
import pytest

from repro.md import LennardJonesCut, Simulation
from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.computes import (
    MeanSquaredDisplacement,
    RadialDistribution,
    VelocityAutocorrelation,
)
from repro.md.lattice import fcc_positions, lj_melt_system


class TestRadialDistribution:
    def test_ideal_gas_is_flat(self):
        """Uncorrelated particles give g(r) ~ 1 everywhere."""
        rng = np.random.default_rng(61)
        box = Box([12.0, 12.0, 12.0])
        rdf = RadialDistribution(r_max=5.0, n_bins=25)
        for _ in range(30):
            system = AtomSystem(rng.uniform(0, 12, (300, 3)), box)
            rdf.sample(system)
        g = rdf.g_of_r()
        # Skip the first noisy bins (few counts at tiny r).
        assert np.allclose(g[5:], 1.0, atol=0.15)

    def test_crystal_shows_shell_peaks(self):
        positions, box = fcc_positions(4, 2.0)
        system = AtomSystem(positions, box)
        rdf = RadialDistribution(r_max=3.4, n_bins=68)
        rdf.sample(system)
        g = rdf.g_of_r()
        r = rdf.bin_centers
        # Nearest-neighbour shell at a/sqrt(2) ~ 1.414.
        nn_bin = np.argmin(np.abs(r - 2.0 / np.sqrt(2.0)))
        assert g[nn_bin : nn_bin + 1].max() > 5.0
        # Excluded region below the first shell.
        assert g[r < 1.2].max() == 0.0

    def test_lj_melt_first_peak_near_sigma(self):
        system = lj_melt_system(500, seed=3)
        sim = Simulation(system, [LennardJonesCut(cutoff=2.5)], dt=0.005)
        sim.run(100)  # melt the lattice
        rdf = RadialDistribution(r_max=3.0, n_bins=60)
        rdf.sample(system)
        g = rdf.g_of_r()
        peak_r = rdf.bin_centers[np.argmax(g)]
        assert 0.95 < peak_r < 1.3  # liquid LJ first shell

    def test_rmax_guard(self):
        box = Box([6.0, 6.0, 6.0])
        system = AtomSystem(np.ones((4, 3)), box)
        rdf = RadialDistribution(r_max=5.0)
        with pytest.raises(ValueError, match="minimum-image"):
            rdf.sample(system)

    def test_no_samples_raises(self):
        with pytest.raises(RuntimeError):
            RadialDistribution(r_max=2.0).g_of_r()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RadialDistribution(r_max=0.0)


class TestMsd:
    def test_zero_at_start(self):
        system = lj_melt_system(200, seed=5)
        msd = MeanSquaredDisplacement(system)
        assert msd.sample(system, 0.0) == pytest.approx(0.0)

    def test_ballistic_free_flight(self):
        """Free particles: MSD = <v^2> t^2 exactly."""
        rng = np.random.default_rng(67)
        box = Box([50.0, 50.0, 50.0])
        system = AtomSystem(rng.uniform(0, 50, (100, 3)), box)
        system.velocities = rng.normal(size=(100, 3))
        msd = MeanSquaredDisplacement(system)
        t = 2.0
        system.positions += system.velocities * t
        system.wrap()
        expected = float(np.mean(np.sum((system.velocities * t) ** 2, axis=1)))
        assert msd.sample(system, t) == pytest.approx(expected, rel=1e-10)

    def test_melt_diffuses_crystal_does_not(self):
        melt = lj_melt_system(256, temperature=1.44, seed=7)
        sim = Simulation(melt, [LennardJonesCut(cutoff=2.5)], dt=0.005)
        sim.run(150)  # melt first
        msd = MeanSquaredDisplacement(melt)
        sim.run(300)
        melt_msd = msd.sample(melt, 1.5)
        assert melt_msd > 0.05  # diffusing liquid

    def test_series(self):
        system = lj_melt_system(100, seed=8)
        msd = MeanSquaredDisplacement(system)
        msd.sample(system, 0.0)
        msd.sample(system, 1.0)
        times, values = msd.series()
        assert times.tolist() == [0.0, 1.0]
        assert len(values) == 2


class TestVacf:
    def test_unity_at_start(self):
        system = lj_melt_system(200, seed=9)
        vacf = VelocityAutocorrelation(system)
        assert vacf.sample(system, 0.0) == pytest.approx(1.0)

    def test_decorrelates_in_a_melt(self):
        system = lj_melt_system(256, temperature=1.44, seed=10)
        sim = Simulation(system, [LennardJonesCut(cutoff=2.5)], dt=0.005)
        sim.run(100)
        vacf = VelocityAutocorrelation(system)
        sim.run(400)
        late = vacf.sample(system, 2.0)
        assert abs(late) < 0.5  # collisions randomize velocities

    def test_zero_velocities_rejected(self):
        box = Box([10, 10, 10])
        system = AtomSystem(np.ones((5, 3)), box)
        with pytest.raises(ValueError):
            VelocityAutocorrelation(system)
