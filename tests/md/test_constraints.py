"""Tests for the SHAKE/RATTLE constraint solver."""

import numpy as np
import pytest

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.constraints import ShakeConstraints


def _water_like(offset=(0.0, 0.0, 0.0)):
    """A rigid triangle: two 1.0 bonds plus a 1.633 H-H constraint."""
    box = Box([20.0, 20.0, 20.0])
    o = np.array([10.0, 10.0, 10.0]) + offset
    half_hh = 1.633 / 2.0
    drop = np.sqrt(1.0 - half_hh**2)  # exact geometry from the distances
    positions = np.array(
        [o, o + [half_hh, drop, 0.0], o + [-half_hh, drop, 0.0]]
    )
    system = AtomSystem(positions, box, masses=[16.0, 1.0, 1.0])
    pairs = np.array([[0, 1], [0, 2], [1, 2]])
    distances = np.array([1.0, 1.0, 1.633])
    return system, ShakeConstraints(pairs, distances)


class TestConstruction:
    def test_counts(self):
        _, shake = _water_like()
        assert shake.n_constraints == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ShakeConstraints(np.array([[0, 1]]), np.array([1.0, 2.0]))

    def test_non_positive_distance_rejected(self):
        with pytest.raises(ValueError):
            ShakeConstraints(np.array([[0, 1]]), np.array([0.0]))


class TestShake:
    def test_perturbed_positions_projected_back(self):
        system, shake = _water_like()
        rng = np.random.default_rng(17)
        reference = system.positions.copy()
        system.positions += rng.normal(0, 0.05, system.positions.shape)
        shake.apply_positions(system, reference, dt=0.01)
        assert shake.max_violation(system) < 1e-7

    def test_velocity_correction_consistent_with_positions(self):
        system, shake = _water_like()
        reference = system.positions.copy()
        system.positions += 0.03
        system.positions[1, 0] += 0.04
        before = system.velocities.copy()
        shake.apply_positions(system, reference, dt=0.01)
        # Velocities absorb the position correction / dt.
        assert not np.allclose(system.velocities, before)

    def test_already_satisfied_is_noop(self):
        system, shake = _water_like()
        reference = system.positions.copy()
        positions_before = system.positions.copy()
        shake.apply_positions(system, reference, dt=0.01)
        assert np.allclose(system.positions, positions_before, atol=1e-12)
        assert shake.last_iterations == 0

    def test_multiple_independent_clusters(self):
        box = Box([20.0, 20.0, 20.0])
        s1, _ = _water_like()
        s2, _ = _water_like(offset=(5.0, 0.0, 0.0))
        positions = np.vstack([s1.positions, s2.positions])
        system = AtomSystem(positions, box, masses=[16, 1, 1, 16, 1, 1])
        pairs = np.array([[0, 1], [0, 2], [1, 2], [3, 4], [3, 5], [4, 5]])
        distances = np.array([1.0, 1.0, 1.633] * 2)
        shake = ShakeConstraints(pairs, distances)
        reference = system.positions.copy()
        system.positions += np.random.default_rng(3).normal(0, 0.04, (6, 3))
        shake.apply_positions(system, reference, dt=0.01)
        assert shake.max_violation(system) < 1e-7


class TestRattle:
    def test_radial_velocities_removed(self):
        system, shake = _water_like()
        rng = np.random.default_rng(23)
        system.velocities = rng.normal(0, 1.0, system.velocities.shape)
        shake.apply_velocities(system)
        i, j = shake.pairs[:, 0], shake.pairs[:, 1]
        dr = system.positions[i] - system.positions[j]
        dv = system.velocities[i] - system.velocities[j]
        radial = np.einsum("ij,ij->i", dr, dv)
        assert np.all(np.abs(radial) < 1e-6)

    def test_momentum_preserved(self):
        system, shake = _water_like()
        rng = np.random.default_rng(29)
        system.velocities = rng.normal(0, 1.0, system.velocities.shape)
        p0 = system.momentum()
        shake.apply_velocities(system)
        assert np.allclose(system.momentum(), p0, atol=1e-10)


class TestDynamicsIntegration:
    def test_constraints_hold_during_md(self):
        """Rigid water under a soft external force keeps its geometry."""
        from repro.md.integrators import VelocityVerletNVE

        system, shake = _water_like()
        rng = np.random.default_rng(31)
        system.seed_velocities(0.3, rng)
        shake.apply_velocities(system)
        integrator = VelocityVerletNVE()
        dt = 0.01
        for _ in range(200):
            reference = system.positions.copy()
            integrator.initial_integrate(system, dt)
            shake.apply_positions(system, reference, dt)
            system.forces = 0.05 * rng.normal(size=system.forces.shape)
            integrator.final_integrate(system, dt)
            shake.apply_velocities(system)
        assert shake.max_violation(system) < 1e-6
