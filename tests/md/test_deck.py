"""Tests for the LAMMPS input-deck parser."""

from pathlib import Path

import numpy as np
import pytest

from repro.md.deck import DeckError, parse_deck, run_deck
from repro.md.integrators import NoseHooverNVT

DECKS_DIR = Path(__file__).resolve().parents[2] / "decks"

IN_LJ = (DECKS_DIR / "in.lj").read_text()


class TestInLj:
    """The stock LAMMPS bench deck parses and runs verbatim."""

    def test_parses(self):
        deck = parse_deck(IN_LJ)
        assert deck.units == "lj"
        assert deck.run_steps == 100
        assert deck.simulation.system.n_atoms == 4 * 5**3
        assert deck.simulation.dt == pytest.approx(0.005)
        assert deck.simulation.neighbor.skin == pytest.approx(0.3)

    def test_lattice_density_honoured(self):
        deck = parse_deck(IN_LJ)
        assert deck.simulation.system.density() == pytest.approx(0.8442)

    def test_velocity_seeded_at_144(self):
        deck = parse_deck(IN_LJ)
        assert deck.simulation.system.temperature() == pytest.approx(1.44)

    def test_famous_melt_temperature(self):
        """LAMMPS's canonical melt: T drops to ~0.7 as the fcc crystal
        melts and kinetic energy converts to potential."""
        sim = run_deck(DECKS_DIR / "in.lj")
        assert sim.counts.timesteps == 100
        assert 0.6 < sim.system.temperature() < 0.85

    def test_neighbors_match_table2(self):
        sim = run_deck(DECKS_DIR / "in.lj")
        assert sim.neighbor.stats.last_neighbors_per_atom == pytest.approx(
            55, rel=0.06
        )

    def test_energy_conserved(self):
        deck = parse_deck(IN_LJ)
        deck.simulation.setup()
        e0 = deck.simulation.total_energy()
        deck.run()
        assert deck.simulation.total_energy() == pytest.approx(e0, rel=5e-4)


class TestInTersoff:
    """The Tersoff silicon deck parses and runs on the real engine."""

    def test_parses(self):
        deck = parse_deck((DECKS_DIR / "in.tersoff").read_text())
        assert deck.units == "metal"
        assert deck.simulation.system.n_atoms == 8 * 4**3
        assert deck.simulation.dt == pytest.approx(0.001)
        from repro.md.potentials.tersoff import Tersoff

        assert isinstance(deck.simulation.potentials[0], Tersoff)
        assert deck.simulation.neighbor.full

    def test_diamond_lattice_masses(self):
        deck = parse_deck((DECKS_DIR / "in.tersoff").read_text())
        assert np.all(deck.simulation.system.masses == pytest.approx(28.0855))

    def test_energy_conserved(self):
        deck = parse_deck((DECKS_DIR / "in.tersoff").read_text())
        deck.simulation.setup()
        e0 = deck.simulation.total_energy()
        deck.run()
        assert deck.simulation.counts.timesteps == 100
        assert deck.simulation.total_energy() == pytest.approx(e0, rel=1e-6)

    def test_tersoff_pair_coeff_validated(self):
        text = (DECKS_DIR / "in.tersoff").read_text().replace(
            "pair_coeff	* * Si.tersoff Si", "pair_coeff	1 1 Si.tersoff Si"
        )
        with pytest.raises(DeckError, match="tersoff pair_coeff"):
            parse_deck(text)


class TestCommandHandling:
    def test_comments_and_blanks_ignored(self):
        deck = parse_deck(IN_LJ + "\n# trailing comment\n\n")
        assert deck.run_steps == 100

    def test_unsupported_command_named(self):
        with pytest.raises(DeckError, match="line .*: unsupported command 'dump'"):
            parse_deck("dump 1 all atom 50 melt.dump")

    def test_missing_run_rejected(self):
        text = IN_LJ.replace("run\t\t100", "")
        with pytest.raises(DeckError, match="no run command"):
            parse_deck(text)

    def test_missing_pair_style_rejected(self):
        text = "\n".join(
            line for line in IN_LJ.splitlines() if not line.startswith("pair_")
        )
        with pytest.raises(DeckError, match="pair_style"):
            parse_deck(text)

    def test_create_atoms_requires_lattice(self):
        with pytest.raises(DeckError):
            parse_deck("units lj\ncreate_atoms 1 box\nrun 1")

    def test_malformed_arguments_name_the_line(self):
        bad = IN_LJ.replace("timestep\t0.005", "timestep\tfast")
        with pytest.raises(DeckError, match="timestep"):
            parse_deck(bad)

    def test_non_positive_timestep_rejected(self):
        bad = IN_LJ.replace("timestep\t0.005", "timestep\t0")
        with pytest.raises(DeckError, match="positive"):
            parse_deck(bad)

    def test_units_validation(self):
        with pytest.raises(DeckError, match="units"):
            parse_deck("units si\nrun 1")


class TestVariants:
    def test_fix_nvt(self):
        text = IN_LJ.replace(
            "fix\t\t1 all nve", "fix\t\t1 all nvt temp 1.0 1.0 0.5"
        )
        deck = parse_deck(text)
        assert isinstance(deck.simulation.integrator, NoseHooverNVT)
        assert deck.simulation.integrator.temperature == pytest.approx(1.0)

    def test_fix_langevin_added_on_top_of_nve(self):
        text = IN_LJ.replace(
            "fix\t\t1 all nve",
            "fix\t\t1 all nve\nfix\t\t2 all langevin 1.0 1.0 0.5 48279",
        )
        deck = parse_deck(text)
        assert len(deck.simulation.fixes) == 1

    def test_soft_pair_style(self):
        text = IN_LJ.replace("pair_style\tlj/cut 2.5", "pair_style\tsoft 1.12")
        text = text.replace("pair_coeff\t1 1 1.0 1.0 2.5", "pair_coeff\t* * 10.0")
        deck = parse_deck(text)
        from repro.md.potentials.soft import SoftRepulsion

        assert isinstance(deck.simulation.potentials[0], SoftRepulsion)

    def test_wildcard_pair_coeff(self):
        text = IN_LJ.replace(
            "pair_coeff\t1 1 1.0 1.0 2.5", "pair_coeff\t* * 0.5 1.1 2.5"
        )
        deck = parse_deck(text)
        lj = deck.simulation.potentials[0]
        assert lj.eps_table[0, 0] == pytest.approx(0.5)
        assert lj.sigma_table[0, 0] == pytest.approx(1.1)

    def test_metal_units_lattice_constant(self):
        text = """
units metal
lattice fcc 3.615
region box block 0 3 0 3 0 3
create_box 1 box
create_atoms 1 box
mass 1 63.546
pair_style lj/cut 4.0
pair_coeff 1 1 0.4 2.3 4.0
neighbor 1.0 bin
fix 1 all nve
timestep 0.002
run 5
"""
        deck = parse_deck(text)
        # metal units: the lattice value IS the lattice constant.
        assert deck.simulation.system.box.lengths[0] == pytest.approx(3 * 3.615)
        assert deck.simulation.system.masses[0] == pytest.approx(63.546)

    def test_deterministic_given_seed(self):
        a = parse_deck(IN_LJ).simulation.system.velocities
        b = parse_deck(IN_LJ).simulation.system.velocities
        assert np.array_equal(a, b)
