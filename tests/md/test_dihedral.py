"""Tests for the CHARMM-style cosine dihedral term."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.atoms import AtomSystem
from repro.md.bonded import CosineDihedral
from repro.md.box import Box

from tests.conftest import finite_difference_forces


def _quad_system(positions):
    return AtomSystem(np.asarray(positions, dtype=float), Box([20.0, 20.0, 20.0]))


def _bent_quad(rng=None, jitter=0.0):
    positions = np.array(
        [[5.0, 5, 5], [6.0, 5, 5], [6.3, 6, 5], [7.0, 6.2, 5.8]]
    )
    if rng is not None:
        positions = positions + rng.uniform(-jitter, jitter, positions.shape)
    return positions


class TestGeometry:
    def test_planar_trans_is_pi(self):
        """A perfectly trans (zig-zag planar) quadruple has |phi| = pi."""
        positions = [[0.0, 0, 0], [1.0, 1, 0], [2.0, 0, 0], [3.0, 1, 0]]
        dih = CosineDihedral(np.array([[0, 1, 2, 3]]))
        phi = dih.dihedral_angles(_quad_system(positions))[0]
        assert abs(abs(phi) - np.pi) < 1e-12

    def test_planar_cis_is_zero(self):
        positions = [[0.0, 1, 0], [1.0, 0, 0], [2.0, 0, 0], [3.0, 1, 0]]
        dih = CosineDihedral(np.array([[0, 1, 2, 3]]))
        phi = dih.dihedral_angles(_quad_system(positions))[0]
        assert abs(phi) < 1e-12

    def test_right_angle(self):
        positions = [[0.0, 1, 0], [0.0, 0, 0], [1.0, 0, 0], [1.0, 0, 1]]
        dih = CosineDihedral(np.array([[0, 1, 2, 3]]))
        phi = dih.dihedral_angles(_quad_system(positions))[0]
        assert abs(abs(phi) - np.pi / 2) < 1e-12


class TestEnergyAndForces:
    def test_energy_at_phase_minimum(self):
        """E = K(1 + cos(n phi - d)) is zero when n phi - d = pi."""
        positions = [[0.0, 1, 0], [1.0, 0, 0], [2.0, 0, 0], [3.0, 1, 0]]  # phi = 0
        dih = CosineDihedral(np.array([[0, 1, 2, 3]]), k=3.0, multiplicity=1,
                             phase=np.pi)
        result = dih.compute(_quad_system(positions))
        assert result.energy == pytest.approx(0.0, abs=1e-12)

    def test_energy_at_phase_maximum(self):
        positions = [[0.0, 1, 0], [1.0, 0, 0], [2.0, 0, 0], [3.0, 1, 0]]  # phi = 0
        dih = CosineDihedral(np.array([[0, 1, 2, 3]]), k=3.0, multiplicity=1,
                             phase=0.0)
        result = dih.compute(_quad_system(positions))
        assert result.energy == pytest.approx(6.0)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_forces_match_finite_differences(self, seed):
        rng = np.random.default_rng(seed)
        positions = _bent_quad(rng, jitter=0.25)
        dih = CosineDihedral(
            np.array([[0, 1, 2, 3]]), k=2.0, multiplicity=3, phase=0.3
        )

        def energy(pos):
            return dih.compute(_quad_system(pos)).energy

        system = _quad_system(positions)
        dih.compute(system)
        reference = finite_difference_forces(energy, positions, h=1e-6)
        scale = max(1.0, float(np.abs(reference).max()))
        assert np.allclose(system.forces, reference, atol=1e-5 * scale)

    def test_forces_sum_to_zero(self):
        rng = np.random.default_rng(77)
        system = _quad_system(_bent_quad(rng, jitter=0.3))
        CosineDihedral(np.array([[0, 1, 2, 3]]), k=5.0).compute(system)
        assert np.allclose(system.forces.sum(axis=0), 0.0, atol=1e-12)

    def test_no_net_torque(self):
        rng = np.random.default_rng(79)
        positions = _bent_quad(rng, jitter=0.3)
        system = _quad_system(positions)
        CosineDihedral(np.array([[0, 1, 2, 3]]), k=5.0).compute(system)
        com = positions.mean(axis=0)
        torque = np.sum(np.cross(positions - com, system.forces), axis=0)
        assert np.allclose(torque, 0.0, atol=1e-10)

    def test_multiple_dihedrals_vectorized(self):
        rng = np.random.default_rng(81)
        positions = np.vstack([_bent_quad(), _bent_quad() + [5.0, 0, 0]])
        positions += rng.uniform(-0.1, 0.1, positions.shape)
        system = AtomSystem(positions, Box([30.0, 30.0, 30.0]))
        dih = CosineDihedral(np.array([[0, 1, 2, 3], [4, 5, 6, 7]]), k=2.0)
        result = dih.compute(system)
        assert result.interactions == 2
        assert result.energy > 0

    def test_empty_is_noop(self):
        system = _quad_system(_bent_quad())
        result = CosineDihedral(np.empty((0, 4))).compute(system)
        assert result.energy == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CosineDihedral(np.array([[0, 1, 2, 3]]), k=-1.0)
        with pytest.raises(ValueError):
            CosineDihedral(np.array([[0, 1, 2, 3]]), multiplicity=0)
