"""Tests for the XYZ trajectory dump writer."""

import numpy as np
import pytest

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.dump import XyzDumpWriter, read_xyz_frames


@pytest.fixture
def system():
    rng = np.random.default_rng(71)
    box = Box([10.0, 10.0, 10.0])
    return AtomSystem(
        rng.uniform(0, 10, (8, 3)), box, types=[0, 0, 1, 1, 2, 2, 0, 1]
    )


class TestWriter:
    def test_round_trip(self, system, tmp_path):
        writer = XyzDumpWriter(tmp_path / "traj.xyz", every=10)
        writer.write_frame(system, 0)
        system.positions += 0.1
        system.wrap()
        writer.write_frame(system, 10)
        frames = read_xyz_frames(tmp_path / "traj.xyz")
        assert [step for step, _ in frames] == [0, 10]
        assert np.allclose(frames[1][1], system.positions, atol=1e-7)
        assert writer.frames_written == 2

    def test_dump_interval(self, tmp_path):
        writer = XyzDumpWriter(tmp_path / "t.xyz", every=5)
        assert writer.should_dump(5)
        assert writer.should_dump(10)
        assert not writer.should_dump(7)

    def test_disabled_dump(self, tmp_path):
        writer = XyzDumpWriter(tmp_path / "t.xyz", every=0)
        assert not writer.should_dump(100)

    def test_negative_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            XyzDumpWriter(tmp_path / "t.xyz", every=-1)

    def test_truncates_previous_trajectory(self, system, tmp_path):
        path = tmp_path / "traj.xyz"
        first = XyzDumpWriter(path)
        first.write_frame(system, 0)
        second = XyzDumpWriter(path)
        second.write_frame(system, 99)
        frames = read_xyz_frames(path)
        assert [step for step, _ in frames] == [99]

    def test_lattice_header_contains_box(self, system, tmp_path):
        path = tmp_path / "traj.xyz"
        XyzDumpWriter(path).write_frame(system, 0)
        content = path.read_text()
        assert 'Lattice="10.0 0.0 0.0' in content

    def test_species_from_types(self, system, tmp_path):
        path = tmp_path / "traj.xyz"
        XyzDumpWriter(path).write_frame(system, 0)
        body = path.read_text().splitlines()[2:]
        species = {line.split()[0] for line in body}
        assert species == {"A", "B", "C"}
