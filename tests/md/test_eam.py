"""Tests for the embedded-atom (EAM) many-body potential."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.lattice import fcc_positions
from repro.md.neighbor import NeighborList
from repro.md.potentials.eam import EAMAlloy, EAMParameters

from tests.conftest import finite_difference_forces


@pytest.fixture
def eam():
    return EAMAlloy()


def _energy_of(positions, box, eam):
    system = AtomSystem(positions, box)
    nlist = NeighborList(eam.cutoff, 0.5)
    nlist.build(system)
    return eam.energy_only(system, nlist)


class TestRadialFunctions:
    def test_density_positive_inside_cutoff(self, eam):
        r = np.linspace(2.0, eam.cutoff - 0.05, 50)
        f, _ = eam.density_function(r)
        assert np.all(f > 0)

    def test_smooth_truncation_value_and_slope(self, eam):
        rc = eam.cutoff
        f, df = eam.density_function(np.array([rc]))
        assert f[0] == pytest.approx(0.0, abs=1e-12)
        assert df[0] == pytest.approx(0.0, abs=1e-12)
        phi, dphi = eam.pair_function(np.array([rc]))
        assert phi[0] == pytest.approx(0.0, abs=1e-12)
        assert dphi[0] == pytest.approx(0.0, abs=1e-12)

    def test_density_decreases_with_distance(self, eam):
        r = np.linspace(2.0, 4.5, 40)
        f, df = eam.density_function(r)
        assert np.all(np.diff(f) < 0)
        assert np.all(df < 0)

    def test_embedding_minimum_at_rho_e(self, eam):
        rho_e = eam.params.rho_e
        F, dF = eam.embedding_function(np.array([rho_e]))
        assert dF[0] == pytest.approx(0.0, abs=1e-12)
        assert F[0] == pytest.approx(-eam.params.E_c)

    def test_embedding_derivative_matches_finite_difference(self, eam):
        rho = np.linspace(2.0, 20.0, 30)
        _, dF = eam.embedding_function(rho)
        h = 1e-6
        Fp, _ = eam.embedding_function(rho + h)
        Fm, _ = eam.embedding_function(rho - h)
        assert np.allclose(dF, (Fp - Fm) / (2 * h), atol=1e-6)

    def test_embedding_cohesive_around_equilibrium(self, eam):
        F, _ = eam.embedding_function(np.array([eam.params.rho_e * 0.8]))
        assert F[0] < 0


class TestEnergetics:
    def test_isolated_pair_energy_hand_check(self, eam):
        """Two atoms: E = 2 F(f(r)) + phi(r), matched by hand."""
        box = Box([30, 30, 30])
        r = 3.0
        energy = _energy_of(np.array([[10.0, 10, 10], [10.0 + r, 10, 10]]), box, eam)
        f, _ = eam.density_function(np.array([r]))
        phi, _ = eam.pair_function(np.array([r]))
        F, _ = eam.embedding_function(f)
        assert energy == pytest.approx(2 * F[0] + phi[0], rel=1e-10)

    def test_fcc_crystal_is_cohesive(self, eam):
        positions, box = fcc_positions(4, 3.615)
        energy = _energy_of(positions, box, eam)
        assert energy / len(positions) < -1.0  # strongly bound solid

    def test_cohesive_energy_curve_has_minimum_near_cu_lattice(self, eam):
        a = np.linspace(3.0, 4.4, 141)
        curve = eam.cohesive_energy_curve(a)
        a_min = a[np.argmin(curve)]
        assert 3.2 < a_min < 4.1  # copper-like equilibrium spacing

    def test_compression_raises_energy(self, eam):
        positions, box = fcc_positions(4, 3.615)
        e0 = _energy_of(positions, box, eam)
        squeezed_box = Box(box.lengths * 0.93)
        e1 = _energy_of(positions * 0.93, squeezed_box, eam)
        assert e1 > e0


class TestForces:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_forces_match_finite_differences(self, seed):
        """Property: many-body analytic forces equal -grad E."""
        rng = np.random.default_rng(seed)
        box = Box([14.0, 14.0, 14.0])
        # Loose cluster around the cell centre, min spacing ~2 A.
        base = np.array([7.0, 7.0, 7.0])
        positions = base + rng.uniform(-3.0, 3.0, (8, 3))
        eam = EAMAlloy()

        def energy(pos):
            return _energy_of(pos, box, eam)

        system = AtomSystem(positions, box)
        nlist = NeighborList(eam.cutoff, 0.5)
        nlist.build(system)
        system.forces[:] = 0.0
        eam.compute(system, nlist)
        reference = finite_difference_forces(energy, system.positions, h=1e-5)
        scale = max(1.0, float(np.abs(reference).max()))
        assert np.allclose(system.forces, reference, atol=1e-4 * scale)

    def test_perfect_crystal_forces_vanish(self, eam):
        positions, box = fcc_positions(4, 3.615)
        system = AtomSystem(positions, box)
        nlist = NeighborList(eam.cutoff, 0.5)
        nlist.build(system)
        system.forces[:] = 0.0
        eam.compute(system, nlist)
        assert np.allclose(system.forces, 0.0, atol=1e-9)

    def test_custom_parameters_respected(self):
        params = EAMParameters(cutoff=4.0)
        assert EAMAlloy(params).cutoff == pytest.approx(4.0)

    def test_isolated_atom_zero_energy(self, eam):
        box = Box([30, 30, 30])
        assert _energy_of(np.array([[15.0, 15, 15]]), box, eam) == pytest.approx(0.0)
