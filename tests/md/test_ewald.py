"""Tests for the Ewald summation solver."""

import numpy as np
import pytest

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.kspace.ewald import EwaldSummation
from repro.md.neighbor import NeighborList
from repro.md.potentials.charmm import CharmmCoulLong

MADELUNG_NACL = 1.747565


def rocksalt(n=4, spacing=1.0):
    """NaCl rock-salt lattice: alternating unit charges on a sc grid."""
    coords = (
        np.array(np.meshgrid(*[np.arange(n)] * 3, indexing="ij")).reshape(3, -1).T
    ).astype(float)
    charges = np.where(coords.sum(axis=1) % 2 == 0, 1.0, -1.0)
    box = Box(np.full(3, n * spacing))
    system = AtomSystem(coords * spacing + 0.25, box, charges=charges)
    return system


def total_coulomb_energy(system, alpha, real_cutoff=1.9, accuracy=1e-8):
    """Real-space erfc part + reciprocal part + corrections."""
    pair = CharmmCoulLong(
        epsilon=[0.0],
        sigma=[1.0],
        lj_inner=real_cutoff * 0.7,
        cutoff=real_cutoff,
        alpha=alpha,
    )
    nlist = NeighborList(real_cutoff, 0.0)
    nlist.build(system)
    real = pair.energy_only(system, nlist)
    ewald = EwaldSummation(alpha, accuracy=accuracy)
    recip = ewald.energy_only(system)
    return real + recip


class TestMadelung:
    def test_nacl_madelung_constant(self):
        system = rocksalt(4)
        energy = total_coulomb_energy(system, alpha=2.0)
        madelung = -2.0 * energy / system.n_atoms
        assert madelung == pytest.approx(MADELUNG_NACL, rel=1e-5)

    def test_forces_vanish_by_symmetry(self):
        system = rocksalt(4)
        system.forces[:] = 0.0
        EwaldSummation(2.0, accuracy=1e-8).compute(system)
        assert np.allclose(system.forces, 0.0, atol=1e-10)

    def test_energy_independent_of_alpha(self):
        """The alpha split is arbitrary: the total must not depend on it."""
        system = rocksalt(4)
        e1 = total_coulomb_energy(system, alpha=1.6)
        e2 = total_coulomb_energy(system, alpha=2.4)
        assert e1 == pytest.approx(e2, rel=1e-5)


class TestRandomSystems:
    def _random_system(self, seed=3, n=40):
        rng = np.random.default_rng(seed)
        box = Box([8.0, 8.0, 8.0])
        q = rng.normal(size=n)
        q -= q.mean()
        return AtomSystem(rng.uniform(0, 8, (n, 3)), box, charges=q)

    def test_forces_match_finite_differences(self):
        system = self._random_system()
        ewald = EwaldSummation(1.0, accuracy=1e-8)
        system.forces[:] = 0.0
        ewald.compute(system)
        analytic = system.forces.copy()
        h = 1e-6
        for atom in (0, 7, 21):
            for dim in range(3):
                plus = system.copy()
                plus.positions[atom, dim] += h
                minus = system.copy()
                minus.positions[atom, dim] -= h
                e_plus = EwaldSummation(1.0, accuracy=1e-8).energy_only(plus)
                e_minus = EwaldSummation(1.0, accuracy=1e-8).energy_only(minus)
                fd = -(e_plus - e_minus) / (2 * h)
                assert analytic[atom, dim] == pytest.approx(fd, abs=5e-4)

    def test_momentum_conserved(self):
        system = self._random_system(seed=9)
        system.forces[:] = 0.0
        EwaldSummation(1.0).compute(system)
        assert np.allclose(system.forces.sum(axis=0), 0.0, atol=1e-8)

    def test_charged_system_rejected(self):
        box = Box([8, 8, 8])
        system = AtomSystem(np.ones((2, 3)), box, charges=[1.0, 0.5])
        with pytest.raises(ValueError, match="charge-neutral"):
            EwaldSummation(1.0).compute(system)

    def test_virial_matches_volume_derivative(self):
        """W = -3V dE/dV under isotropic scaling of box + coordinates."""
        system = self._random_system(seed=5)
        ewald = EwaldSummation(1.0, accuracy=1e-10)
        system.forces[:] = 0.0
        result = ewald.compute(system)
        eps = 1e-5
        # Scale box and positions together (fractional coords fixed).
        up = system.copy()
        up.box.scale(1 + eps)
        up.positions *= 1 + eps
        down = system.copy()
        down.box.scale(1 - eps)
        down.positions *= 1 - eps
        e_up = EwaldSummation(1.0, accuracy=1e-10).energy_only(up)
        e_down = EwaldSummation(1.0, accuracy=1e-10).energy_only(down)
        v = system.box.volume
        dE_dV = (e_up - e_down) / (((1 + eps) ** 3 - (1 - eps) ** 3) * v)
        assert result.virial == pytest.approx(-3.0 * v * dE_dV, rel=1e-3)


class TestExclusions:
    def test_excluded_pair_contribution_removed(self):
        """With every pair excluded, real(full coulomb over exclusions)
        cancellation: E_kspace + corrections ~ 0 for an isolated dimer."""
        box = Box([20.0, 20.0, 20.0])
        system = AtomSystem(
            np.array([[9.5, 10, 10], [10.5, 10, 10]]), box, charges=[1.0, -1.0]
        )
        ewald = EwaldSummation(
            0.8, accuracy=1e-10, exclusions=np.array([[0, 1]])
        )
        energy = ewald.energy_only(system)
        # Remaining: interaction with periodic images only (tiny for a
        # 20-unit box and a dipole of extent 1).
        assert abs(energy) < 0.02

    def test_validation_parameters(self):
        with pytest.raises(ValueError):
            EwaldSummation(0.0)
        with pytest.raises(ValueError):
            EwaldSummation(1.0, accuracy=2.0)
