"""Failure-injection tests: the engine fails loudly, not silently."""

import numpy as np
import pytest

from repro.md import LennardJonesCut, Simulation
from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.lattice import lj_melt_system


class TestBlowUpDetection:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_overlapping_atoms_with_huge_timestep_raise(self):
        """Two nearly-coincident atoms + a large dt must raise, not
        silently produce a NaN trajectory."""
        box = Box([10.0, 10.0, 10.0])
        system = AtomSystem(
            np.array([[5.0, 5.0, 5.0], [5.0 + 1e-7, 5.0, 5.0], [7.0, 5.0, 5.0]]),
            box,
        )
        sim = Simulation(system, [LennardJonesCut(cutoff=2.5)], dt=10.0)
        with pytest.raises(FloatingPointError, match="blew up|overstretched"):
            sim.run(50)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_injected_nan_position_detected(self):
        sim = Simulation(
            lj_melt_system(256, seed=31), [LennardJonesCut(cutoff=2.5)], dt=0.005
        )
        sim.run(2)
        sim.system.positions[0, 0] = np.nan
        with pytest.raises((FloatingPointError, ValueError)):
            sim.run(3)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_injected_inf_velocity_detected(self):
        sim = Simulation(
            lj_melt_system(256, seed=33), [LennardJonesCut(cutoff=2.5)], dt=0.005
        )
        sim.run(2)
        sim.system.velocities[0] = [np.inf, 0.0, 0.0]
        with pytest.raises((FloatingPointError, ValueError)):
            sim.run(3)

    def test_healthy_run_not_flagged(self):
        sim = Simulation(
            lj_melt_system(256, seed=35), [LennardJonesCut(cutoff=2.5)], dt=0.005
        )
        sim.run(50)  # no spurious failure
        assert np.isfinite(sim.total_energy())

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_error_message_names_the_step(self):
        box = Box([10.0, 10.0, 10.0])
        system = AtomSystem(
            np.array([[5.0, 5.0, 5.0], [5.0 + 1e-7, 5.0, 5.0], [7.0, 5.0, 5.0]]),
            box,
        )
        sim = Simulation(system, [LennardJonesCut(cutoff=2.5)], dt=10.0)
        with pytest.raises(FloatingPointError, match="step"):
            sim.run(20)


class TestFeneGuard:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_overstretch_names_the_cause(self):
        from repro.suite import get_benchmark

        sim = get_benchmark("chain").build(200)
        sim.dt = 1.0  # catastrophically large
        with pytest.raises(FloatingPointError):
            sim.run(30)
