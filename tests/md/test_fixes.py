"""Tests for fixes: Langevin thermostat, gravity, bottom wall."""

import numpy as np
import pytest

from repro.md import LangevinThermostat, LennardJonesCut, Simulation
from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.fixes import BottomWall, Gravity
from repro.md.lattice import lj_melt_system


class TestLangevin:
    def test_equilibrates_to_target_temperature(self):
        system = lj_melt_system(256, temperature=0.2, seed=101)
        rng = np.random.default_rng(102)
        sim = Simulation(
            system,
            [LennardJonesCut(cutoff=2.5)],
            fixes=[LangevinThermostat(1.0, damp=0.5, rng=rng)],
            dt=0.004,
            skin=0.3,
        )
        sim.setup()
        sim.run(800)
        temps = []
        for _ in range(10):
            sim.run(30)
            temps.append(system.temperature())
        assert np.mean(temps) == pytest.approx(1.0, rel=0.2)

    def test_drag_opposes_velocity_at_zero_temperature(self):
        box = Box([10, 10, 10])
        system = AtomSystem(np.array([[5.0, 5, 5]]), box)
        system.velocities[0] = [2.0, 0.0, 0.0]
        fix = LangevinThermostat(0.0, damp=1.0, rng=np.random.default_rng(1))
        fix.post_force(system, dt=0.01, step=1)
        assert system.forces[0, 0] == pytest.approx(-2.0)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            LangevinThermostat(-1.0, 1.0, rng)
        with pytest.raises(ValueError):
            LangevinThermostat(1.0, 0.0, rng)


class TestGravity:
    def test_chute_tilt_decomposition(self):
        g = Gravity(magnitude=1.0, chute_angle_deg=26.0)
        assert g.vector[0] == pytest.approx(np.sin(np.radians(26.0)))
        assert g.vector[2] == pytest.approx(-np.cos(np.radians(26.0)))
        assert g.vector[1] == 0.0

    def test_force_proportional_to_mass(self):
        box = Box([10, 10, 10], periodic=[True, True, False])
        system = AtomSystem(np.array([[5.0, 5, 5], [6.0, 5, 5]]), box, masses=[1.0, 3.0])
        Gravity(1.0, 0.0).post_force(system, 0.01, 1)
        assert system.forces[1, 2] == pytest.approx(3.0 * system.forces[0, 2] / 1.0)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError):
            Gravity(-1.0)


class TestBottomWall:
    def test_overlapping_particle_pushed_up(self):
        box = Box([10, 10, 10], periodic=[True, True, False])
        system = AtomSystem(np.array([[5.0, 5.0, 0.3]]), box, radii=0.5)
        BottomWall(k=100.0, gamma=0.0).post_force(system, 0.01, 1)
        assert system.forces[0, 2] == pytest.approx(100.0 * 0.2)

    def test_clear_particle_untouched(self):
        box = Box([10, 10, 10], periodic=[True, True, False])
        system = AtomSystem(np.array([[5.0, 5.0, 2.0]]), box, radii=0.5)
        BottomWall().post_force(system, 0.01, 1)
        assert np.allclose(system.forces, 0.0)

    def test_damping_resists_impact_velocity(self):
        box = Box([10, 10, 10], periodic=[True, True, False])
        system = AtomSystem(np.array([[5.0, 5.0, 0.45]]), box, radii=0.5)
        system.velocities[0, 2] = -1.0
        spring_only = BottomWall(k=100.0, gamma=0.0)
        spring_only.post_force(system, 0.01, 1)
        f_spring = system.forces[0, 2]
        system.forces[:] = 0.0
        damped = BottomWall(k=100.0, gamma=10.0)
        damped.post_force(system, 0.01, 1)
        assert system.forces[0, 2] > f_spring  # damping adds upward push

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            BottomWall(dim=3)

    def test_wall_keeps_falling_grain_in_box(self):
        """Gravity + wall: a dropped grain settles near the floor."""
        from repro.md.integrators import VelocityVerletNVE

        box = Box([10, 10, 10], periodic=[True, True, False])
        system = AtomSystem(np.array([[5.0, 5.0, 2.0]]), box, radii=0.5)
        gravity = Gravity(1.0, chute_angle_deg=0.0)
        wall = BottomWall(k=1000.0, gamma=20.0)
        integrator = VelocityVerletNVE()
        dt = 1e-3
        for step in range(20000):
            integrator.initial_integrate(system, dt)
            system.forces[:] = 0.0
            system.torques[:] = 0.0
            gravity.post_force(system, dt, step)
            wall.post_force(system, dt, step)
            integrator.final_integrate(system, dt)
        assert 0.3 < system.positions[0, 2] < 0.7
        assert abs(system.velocities[0, 2]) < 0.05
