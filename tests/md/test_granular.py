"""Tests for the Hookean granular contact potential with friction history."""

import numpy as np
import pytest

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.neighbor import NeighborList
from repro.md.potentials.granular import ContactHistory, HookeHistory


def _touching_pair(overlap=0.1, v_rel=None, omega=None):
    """Two unit-diameter grains overlapping by ``overlap`` along x."""
    box = Box([20.0, 20.0, 20.0], periodic=[True, True, False])
    positions = np.array([[10.0, 10, 5], [11.0 - overlap, 10, 5]])
    system = AtomSystem(positions, box, radii=0.5)
    if v_rel is not None:
        system.velocities[0] = v_rel
    if omega is not None:
        system.omega[:] = omega
    return system


def _compute(system, potential):
    nlist = NeighborList(potential.cutoff, 0.1, full=True)
    nlist.build(system)
    system.forces[:] = 0.0
    system.torques[:] = 0.0
    return potential.compute(system, nlist)


class TestNormalContact:
    def test_overlapping_grains_repel(self):
        system = _touching_pair(overlap=0.05)
        pot = HookeHistory(k_n=1000.0, gamma_n=0.0)
        _compute(system, pot)
        assert system.forces[0, 0] < 0  # pushed apart along -x
        assert system.forces[1, 0] > 0

    def test_spring_force_magnitude(self):
        overlap = 0.04
        system = _touching_pair(overlap=overlap)
        pot = HookeHistory(k_n=1000.0, gamma_n=0.0)
        _compute(system, pot)
        assert abs(system.forces[0, 0]) == pytest.approx(1000.0 * overlap)

    def test_separated_grains_no_force(self):
        box = Box([20, 20, 20], periodic=[True, True, False])
        system = AtomSystem(
            np.array([[5.0, 5, 5], [6.5, 5, 5]]), box, radii=0.5
        )
        pot = HookeHistory()
        result = _compute(system, pot)
        assert np.allclose(system.forces, 0.0)
        assert result.energy == 0.0

    def test_normal_damping_opposes_approach(self):
        system = _touching_pair(overlap=0.001, v_rel=[1.0, 0.0, 0.0])
        pot = HookeHistory(k_n=0.0, gamma_n=10.0, gamma_t=0.0)
        _compute(system, pot)
        assert system.forces[0, 0] < 0  # damping resists closing velocity

    def test_momentum_conserved(self):
        system = _touching_pair(overlap=0.05, v_rel=[0.3, 0.2, -0.1])
        _compute(system, HookeHistory())
        assert np.allclose(system.forces.sum(axis=0), 0.0, atol=1e-10)

    def test_requires_granular_system(self):
        box = Box([10, 10, 10])
        system = AtomSystem(np.ones((2, 3)), box)  # no radii
        nlist = NeighborList(1.0, 0.1, full=True)
        nlist.build(system)
        with pytest.raises(ValueError):
            HookeHistory().compute(system, nlist)

    def test_interactions_counted_full_list(self):
        """Newton-off accounting: both pair directions count as work."""
        system = _touching_pair(overlap=0.05)
        result = _compute(system, HookeHistory())
        assert result.interactions == 2


class TestTangentialHistory:
    def test_history_accumulates_under_shear(self):
        pot = HookeHistory(k_n=1000.0, gamma_n=0.0, gamma_t=0.0, mu=100.0, dt=0.01)
        system = _touching_pair(overlap=0.05, v_rel=[0.0, 1.0, 0.0])
        _compute(system, pot)
        f_t_1 = system.forces[0, 1]
        _compute(system, pot)  # second step: history has grown
        f_t_2 = system.forces[0, 1]
        assert f_t_1 < 0  # friction opposes the sliding direction
        assert abs(f_t_2) > abs(f_t_1)

    def test_coulomb_cap_limits_friction(self):
        pot = HookeHistory(k_n=1000.0, gamma_n=0.0, gamma_t=0.0, mu=0.2, dt=0.1)
        system = _touching_pair(overlap=0.05, v_rel=[0.0, 5.0, 0.0])
        for _ in range(30):
            _compute(system, pot)
        f_n = 1000.0 * 0.05
        f_t = np.linalg.norm(system.forces[0, [1, 2]])
        assert f_t <= 0.2 * f_n * (1.0 + 1e-9)

    def test_history_cleared_when_contact_breaks(self):
        pot = HookeHistory(dt=0.01)
        system = _touching_pair(overlap=0.05, v_rel=[0.0, 1.0, 0.0])
        _compute(system, pot)
        assert pot.active_contacts == 1
        system.positions[1, 0] = 15.0  # separate far beyond the cutoff
        _compute(system, pot)
        assert pot.active_contacts == 0

    def test_tangential_force_produces_torque(self):
        pot = HookeHistory(k_n=1000.0, gamma_n=0.0, mu=100.0, dt=0.01)
        system = _touching_pair(overlap=0.05, v_rel=[0.0, 1.0, 0.0])
        _compute(system, pot)
        assert not np.allclose(system.torques, 0.0)

    def test_energy_is_dissipated_in_dynamics(self):
        """A sheared contact with damping loses kinetic energy."""
        from repro.md.integrators import VelocityVerletNVE

        pot = HookeHistory(k_n=1000.0, gamma_n=20.0, dt=1e-3)
        system = _touching_pair(overlap=0.02, v_rel=[0.0, 0.5, 0.0])
        nlist = NeighborList(pot.cutoff, 0.1, full=True)
        nlist.build(system)
        integrator = VelocityVerletNVE()
        result = pot.compute(system, nlist)
        total0 = system.kinetic_energy() + result.energy
        for _ in range(200):
            integrator.initial_integrate(system, 1e-3)
            nlist.ensure(system)
            system.forces[:] = 0.0
            system.torques[:] = 0.0
            result = pot.compute(system, nlist)
            integrator.final_integrate(system, 1e-3)
        total1 = system.kinetic_energy() + result.energy
        assert total1 < total0


class TestContactHistoryStore:
    def test_new_contacts_start_at_zero(self):
        store = ContactHistory()
        values = store.sync(np.array([3, 7], dtype=np.int64))
        assert np.allclose(values, 0.0)
        assert len(store) == 2

    def test_values_survive_reordering(self):
        store = ContactHistory()
        store.sync(np.array([3, 7], dtype=np.int64))
        store.store(np.array([[1.0, 0, 0], [0, 2.0, 0]]))
        values = store.sync(np.array([7, 3], dtype=np.int64))
        assert np.allclose(values[0], [0, 2.0, 0])
        assert np.allclose(values[1], [1.0, 0, 0])

    def test_departed_contacts_dropped(self):
        store = ContactHistory()
        store.sync(np.array([3, 7], dtype=np.int64))
        store.store(np.array([[1.0, 0, 0], [0, 2.0, 0]]))
        values = store.sync(np.array([7, 9], dtype=np.int64))
        assert np.allclose(values[0], [0, 2.0, 0])
        assert np.allclose(values[1], 0.0)

    def test_empty_sync(self):
        store = ContactHistory()
        values = store.sync(np.empty(0, dtype=np.int64))
        assert values.shape == (0, 3)
