"""Tests for NVE / Nose-Hoover NVT / NPT integrators."""

import numpy as np
import pytest

from repro.md import LennardJonesCut, NoseHooverNPT, NoseHooverNVT, Simulation
from repro.md.integrators import VelocityVerletNVE
from repro.md.lattice import lj_melt_system


def _lj_sim(n=256, integrator=None, dt=0.005, temperature=1.0):
    system = lj_melt_system(n, temperature=temperature, seed=99)
    return Simulation(
        system,
        [LennardJonesCut(cutoff=2.5)],
        integrator=integrator,
        dt=dt,
        skin=0.3,
    )


class TestNVE:
    def test_energy_conserved(self):
        sim = _lj_sim(temperature=1.44)
        sim.setup()
        e0 = sim.total_energy()
        sim.run(300)
        assert sim.total_energy() == pytest.approx(e0, rel=2e-4)

    def test_energy_drift_shrinks_with_timestep(self):
        """Velocity Verlet is ~O(dt^2): halving dt should cut the drift."""
        drifts = []
        for dt in (0.005, 0.00125):
            sim = _lj_sim(dt=dt, temperature=1.44)
            sim.setup()
            e0 = sim.total_energy()
            sim.run(int(0.5 / dt))  # same simulated time
            drifts.append(abs(sim.total_energy() - e0))
        assert drifts[1] < drifts[0]

    def test_momentum_conserved(self):
        sim = _lj_sim()
        sim.setup()
        p0 = sim.system.momentum()
        sim.run(100)
        assert np.allclose(sim.system.momentum(), p0, atol=1e-9)

    def test_still_system_stays_still_without_forces(self):
        from repro.md.atoms import AtomSystem
        from repro.md.box import Box

        system = AtomSystem(np.array([[1.0, 1, 1], [5.0, 5, 5]]), Box([10, 10, 10]))
        integrator = VelocityVerletNVE()
        integrator.initial_integrate(system, 0.01)
        integrator.final_integrate(system, 0.01)
        assert np.allclose(system.velocities, 0.0)


class TestNVT:
    def test_temperature_regulated(self):
        target = 0.9
        sim = _lj_sim(
            n=256,
            integrator=NoseHooverNVT(temperature=target, t_damp=0.5),
            temperature=1.4,
        )
        sim.setup()
        sim.run(800)
        temps = [sim.system.temperature()]
        for _ in range(10):
            sim.run(30)
            temps.append(sim.system.temperature())
        assert np.mean(temps) == pytest.approx(target, rel=0.15)

    def test_heats_cold_start(self):
        sim = _lj_sim(
            n=256, integrator=NoseHooverNVT(temperature=1.0, t_damp=0.3), temperature=0.1
        )
        sim.setup()
        sim.run(600)
        assert sim.system.temperature() > 0.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NoseHooverNVT(temperature=-1.0, t_damp=1.0)
        with pytest.raises(ValueError):
            NoseHooverNVT(temperature=1.0, t_damp=0.0)


class TestNPT:
    def test_box_responds_to_pressure_gap(self):
        """A system way above target pressure must expand its box."""
        integ = NoseHooverNPT(temperature=1.0, t_damp=0.5, pressure=0.0, p_damp=2.0)
        sim = _lj_sim(n=256, integrator=integ, temperature=1.2)
        v0 = sim.system.box.volume
        sim.setup()
        sim.run(400)
        # LJ at rho 0.8442, T~1 has strongly positive pressure.
        assert sim.system.box.volume > v0

    def test_strain_rate_capped(self):
        integ = NoseHooverNPT(temperature=1.0, t_damp=0.5, pressure=0.0, p_damp=0.01)
        integ.set_virial(1e12)  # absurd pressure spike
        sim = _lj_sim(n=256, integrator=integ)
        sim.setup()
        sim.run(5)  # must not overflow
        assert np.isfinite(sim.system.box.volume)

    def test_pressure_readout(self):
        integ = NoseHooverNPT(temperature=1.0, t_damp=0.5, pressure=0.0, p_damp=5.0)
        sim = _lj_sim(n=256, integrator=integ)
        sim.setup()
        assert np.isfinite(integ.current_pressure(sim.system))

    def test_invalid_p_damp_rejected(self):
        with pytest.raises(ValueError):
            NoseHooverNPT(temperature=1.0, t_damp=1.0, pressure=0.0, p_damp=0.0)


class TestGranularIntegration:
    def test_angular_velocity_advanced_by_torque(self):
        from repro.md.atoms import AtomSystem
        from repro.md.box import Box

        box = Box([10, 10, 10], periodic=[True, True, False])
        system = AtomSystem(np.array([[5.0, 5, 5]]), box, radii=0.5)
        system.torques[0] = [0.0, 0.0, 1.0]
        VelocityVerletNVE().initial_integrate(system, 0.1)
        # I = 2/5 m R^2 = 0.1 ; d(omega) = tau / I * dt / 2 = 0.5
        assert system.omega[0, 2] == pytest.approx(0.5)
