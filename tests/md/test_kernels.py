"""Kernel-backend tests: registry, CSR geometry, and the oracle.

The backend-equivalence suite is the contract that lets ``numpy_fast``
be the default: for every pair style in the engine, forces, energy and
virial computed on the optimized backend must match the ``numpy_ref``
oracle to 1e-12.
"""

import numpy as np
import pytest

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.kernels import (
    AUTO_BACKEND,
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    KernelBackend,
    NumpyFastBackend,
    NumpyRefBackend,
    available_backends,
    backend_spec,
    get_backend,
    resolve_auto_backend,
)
from repro.md.lattice import chute_system, eam_solid_system, lj_melt_system
from repro.md.neighbor import NeighborList
from repro.md.potentials.charmm import CharmmCoulLong
from repro.md.potentials.eam import EAMAlloy
from repro.md.potentials.granular import HookeHistory
from repro.md.potentials.lj import LennardJonesCut
from repro.md.potentials.soft import SoftRepulsion
from repro.md.potentials.table import TabulatedPair
from repro.md.simulation import Simulation

TOL = dict(rtol=1e-12, atol=1e-12)


class TestRegistry:
    def test_available_backends(self):
        assert set(available_backends()) == {"numpy_ref", "numpy_fast", "compiled"}

    def test_default_is_numpy_fast(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert DEFAULT_BACKEND == "numpy_fast"
        assert isinstance(get_backend(), NumpyFastBackend)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy_ref")
        assert isinstance(get_backend(), NumpyRefBackend)

    def test_instance_passes_through(self):
        backend = NumpyFastBackend()
        assert get_backend(backend) is backend

    def test_name_lookup(self):
        assert isinstance(get_backend("numpy_ref"), NumpyRefBackend)
        assert isinstance(get_backend("numpy_fast"), NumpyFastBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("fortran77")

    def test_auto_resolves_to_best_available(self):
        from repro.md.kernels.compiled import compiled_available

        expected = "compiled" if compiled_available() else DEFAULT_BACKEND
        assert resolve_auto_backend() == expected
        assert backend_spec(get_backend(AUTO_BACKEND)) == expected

    def test_auto_via_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, AUTO_BACKEND)
        assert backend_spec(get_backend()) == resolve_auto_backend()

    def test_auto_is_never_a_registry_name(self):
        # "auto" must resolve before the registry lookup, not live in it.
        assert AUTO_BACKEND not in available_backends()

    def test_simulation_shares_backend_with_potentials(self):
        sim = Simulation(
            lj_melt_system(100, seed=3),
            [LennardJonesCut(cutoff=2.5)],
            backend="numpy_ref",
        )
        assert isinstance(sim.backend, NumpyRefBackend)
        assert sim.potentials[0].backend is sim.backend


class TestFastPairGeometry:
    """`numpy_fast.current_pairs` must match the reference bitwise."""

    @pytest.mark.parametrize("periodic", [(True, True, True), (True, True, False)])
    def test_matches_reference_bitwise(self, periodic):
        rng = np.random.default_rng(11)
        box = Box([9.0, 10.0, 11.0], periodic=periodic)
        system = AtomSystem(rng.uniform(0, 1, (300, 3)) * box.lengths, box)
        nlist = NeighborList(2.0, 0.3)
        nlist.build(system)
        system.positions += rng.normal(scale=0.02, size=system.positions.shape)
        ref = NumpyRefBackend().current_pairs(system, nlist, 2.0)
        fast = NumpyFastBackend().current_pairs(system, nlist, 2.0)
        for a, b in zip(ref, fast):
            assert np.array_equal(a, b)

    def test_raises_before_build(self):
        system = AtomSystem(np.ones((2, 3)), Box([5, 5, 5]))
        with pytest.raises(RuntimeError):
            NumpyFastBackend().current_pairs(system, NeighborList(1.0, 0.1))

    def test_scratch_is_reused_not_leaked(self):
        rng = np.random.default_rng(12)
        box = Box([8.0, 8.0, 8.0])
        system = AtomSystem(rng.uniform(0, 8, (200, 3)), box)
        nlist = NeighborList(2.0, 0.3)
        nlist.build(system)
        backend = NumpyFastBackend()
        _, _, dr1, r1 = backend.current_pairs(system, nlist, 2.0)
        capacity = backend._capacity
        dr1_copy, r1_copy = dr1.copy(), r1.copy()
        backend.current_pairs(system, nlist, 2.0)
        # Outputs are compressed copies: a second call must not clobber
        # previously returned arrays, and capacity must not regrow.
        assert np.array_equal(dr1, dr1_copy)
        assert np.array_equal(r1, r1_copy)
        assert backend._capacity == capacity


class TestScatterPrimitives:
    def test_scatter_add_matches_ufunc_at(self):
        rng = np.random.default_rng(21)
        idx = rng.integers(0, 50, 4000)
        vals = rng.normal(size=4000)
        a = np.zeros(50)
        b = np.zeros(50)
        NumpyRefBackend().scatter_add(a, idx, vals)
        NumpyFastBackend().scatter_add(b, idx, vals)
        np.testing.assert_allclose(a, b, **TOL)

    def test_scatter_add_vectors(self):
        rng = np.random.default_rng(22)
        idx = rng.integers(0, 40, 900)
        vals = rng.normal(size=(900, 3))
        a = np.zeros((40, 3))
        b = np.zeros((40, 3))
        NumpyRefBackend().scatter_add(a, idx, vals)
        NumpyFastBackend().scatter_add(b, idx, vals)
        np.testing.assert_allclose(a, b, **TOL)

    @pytest.mark.parametrize("sorted_i", [True, False])
    def test_scaled_accumulation_matches(self, sorted_i):
        rng = np.random.default_rng(23)
        m, n = 5000, 120
        i = rng.integers(0, n, m)
        if sorted_i:
            i = np.sort(i)
        j = rng.integers(0, n, m)
        dr = rng.normal(size=(m, 3))
        f_over_r = rng.normal(size=m)
        a = np.zeros((n, 3))
        b = np.zeros((n, 3))
        NumpyRefBackend().accumulate_scaled_pair_forces(a, i, j, dr, f_over_r)
        NumpyFastBackend().accumulate_scaled_pair_forces(b, i, j, dr, f_over_r)
        np.testing.assert_allclose(a, b, **TOL)


def _fluid_system(n=250, seed=31, charges=False, types=1):
    rng = np.random.default_rng(seed)
    box = Box([9.0, 9.0, 9.0])
    # Minimum-separation jitter off a cubic grid avoids singular overlaps.
    side = int(np.ceil(n ** (1 / 3)))
    grid = np.stack(
        np.meshgrid(*[np.arange(side)] * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3)[:n]
    positions = (grid + 0.5) * (box.lengths / side)
    positions += rng.normal(scale=0.08, size=positions.shape)
    system = AtomSystem(
        positions,
        box,
        types=rng.integers(0, types, n) if types > 1 else None,
        charges=rng.normal(size=n) if charges else None,
    )
    system.seed_velocities(1.0, rng)
    return system


def _pair_cases():
    lj_table = TabulatedPair.from_potential(
        LennardJonesCut(cutoff=2.5), 0.8, 2.5, n_samples=200
    )
    return [
        ("lj_single_type", LennardJonesCut(cutoff=2.5), _fluid_system()),
        (
            "lj_multi_type",
            LennardJonesCut(
                epsilon=np.array([1.0, 0.6]),
                sigma=np.array([1.0, 1.1]),
                cutoff=2.5,
            ),
            _fluid_system(types=2),
        ),
        (
            "charmm",
            CharmmCoulLong(lj_inner=1.6, cutoff=2.4, alpha=0.7),
            _fluid_system(charges=True),
        ),
        ("soft", SoftRepulsion(prefactor=5.0, cutoff=1.5), _fluid_system()),
        ("table", lj_table, _fluid_system()),
    ]


class TestBackendOracle:
    """forces/energy/virial agree to 1e-12 for every pair style."""

    @pytest.mark.parametrize(
        "potential,system",
        [pytest.param(p, s, id=name) for name, p, s in _pair_cases()],
    )
    def test_analytic_pair_styles(self, potential, system):
        nlist = NeighborList(potential.cutoff, 0.3)
        nlist.build(system)
        results = {}
        for backend in ("numpy_ref", "numpy_fast"):
            potential.backend = backend
            system.forces[:] = 0.0
            out = potential.compute(system, nlist)
            results[backend] = (system.forces.copy(), out.energy, out.virial)
        f_ref, e_ref, v_ref = results["numpy_ref"]
        f_fast, e_fast, v_fast = results["numpy_fast"]
        np.testing.assert_allclose(f_fast, f_ref, **TOL)
        assert e_fast == pytest.approx(e_ref, rel=1e-12, abs=1e-12)
        assert v_fast == pytest.approx(v_ref, rel=1e-12, abs=1e-12)

    def test_eam(self):
        system = eam_solid_system(256, seed=5)
        potential = EAMAlloy()
        nlist = NeighborList(potential.cutoff, 1.0)
        nlist.build(system)
        results = {}
        for backend in ("numpy_ref", "numpy_fast"):
            potential.backend = backend
            system.forces[:] = 0.0
            out = potential.compute(system, nlist)
            results[backend] = (system.forces.copy(), out.energy, out.virial)
        f_ref, e_ref, v_ref = results["numpy_ref"]
        f_fast, e_fast, v_fast = results["numpy_fast"]
        np.testing.assert_allclose(f_fast, f_ref, **TOL)
        assert e_fast == pytest.approx(e_ref, rel=1e-12)
        assert v_fast == pytest.approx(v_ref, rel=1e-12)

    def test_granular_with_history_and_torques(self):
        results = {}
        for backend in ("numpy_ref", "numpy_fast"):
            system = chute_system(5, 5, 3, seed=9)
            potential = HookeHistory(dt=1e-4)
            potential.backend = backend
            nlist = NeighborList(potential.cutoff, 0.1, full=True)
            nlist.build(system)
            # Two evaluations so the tangential history is exercised.
            for _ in range(2):
                system.forces[:] = 0.0
                system.torques[:] = 0.0
                out = potential.compute(system, nlist)
            results[backend] = (
                system.forces.copy(),
                system.torques.copy(),
                out.energy,
                out.virial,
            )
        f_ref, t_ref, e_ref, v_ref = results["numpy_ref"]
        f_fast, t_fast, e_fast, v_fast = results["numpy_fast"]
        np.testing.assert_allclose(f_fast, f_ref, rtol=1e-12, atol=1e-9)
        np.testing.assert_allclose(t_fast, t_ref, rtol=1e-12, atol=1e-9)
        assert e_fast == pytest.approx(e_ref, rel=1e-12)
        assert v_fast == pytest.approx(v_ref, rel=1e-12)

    def test_short_lj_trajectories_agree(self):
        """Whole-simulation check: 20 steps on each backend stay equal."""
        trajectories = {}
        for backend in ("numpy_ref", "numpy_fast"):
            sim = Simulation(
                lj_melt_system(256, seed=77),
                [LennardJonesCut(cutoff=2.5)],
                dt=0.005,
                backend=backend,
            )
            sim.run(20)
            trajectories[backend] = sim.system.positions.copy()
        np.testing.assert_allclose(
            trajectories["numpy_fast"],
            trajectories["numpy_ref"],
            rtol=1e-10,
            atol=1e-10,
        )


class TestBackendProtocol:
    def test_custom_backend_instance_accepted(self):
        class Recording(NumpyRefBackend):
            name = "recording"

            def __init__(self):
                self.calls = 0

            def current_pairs(self, system, neighbors, cutoff=None):
                self.calls += 1
                return super().current_pairs(system, neighbors, cutoff)

        backend = Recording()
        assert isinstance(backend, KernelBackend)
        sim = Simulation(
            lj_melt_system(256, seed=1),
            [LennardJonesCut(cutoff=2.5)],
            backend=backend,
        )
        sim.run(2)
        assert backend.calls >= 2
