"""Compiled-backend tests: provider resolution and fallback semantics,
the bitwise contracts against the numpy implementations, the
backend x precision oracle matrix, and parallel determinism.

Everything that needs a working provider (numba or a C compiler) is
guarded by ``needs_compiled``; the availability/fallback tests run
everywhere because they exercise exactly the no-provider path.
"""

import warnings

import numpy as np
import pytest

import repro.md.kernels as kernels_module
from repro.md import policy_for
from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.kernels import (
    BackendUnavailableError,
    CompiledBackend,
    NumpyFastBackend,
    available_backends,
    backend_diagnostics,
    backend_spec,
    get_backend,
)
from repro.md.kernels.compiled import (
    PROVIDER_ENV_VAR,
    compiled_available,
    compiled_diagnostic,
    provider_info,
)
from repro.md.lattice import eam_solid_system, lj_melt_system
from repro.md.neighbor import NeighborList, cell_list_half_pairs
from repro.md.potentials.eam import EAMAlloy
from repro.md.potentials.lj import LennardJonesCut
from repro.md.simulation import Simulation

needs_compiled = pytest.mark.skipif(
    not compiled_available(),
    reason="no compiled provider (neither numba nor a C compiler works)",
)


# ---------------------------------------------------------------------------
# Availability, diagnostics, and the numpy_fast fallback
# ---------------------------------------------------------------------------
class TestAvailabilityAndFallback:
    def test_diagnostics_cover_every_backend(self):
        diagnostics = backend_diagnostics()
        assert set(diagnostics) == set(available_backends())
        assert diagnostics["numpy_ref"] == "ok"
        assert diagnostics["numpy_fast"] == "ok"

    @needs_compiled
    def test_diagnostic_names_the_provider(self):
        status = compiled_diagnostic()
        assert status.startswith("ok (provider=")
        info = provider_info()
        assert info is not None and info["kind"] in ("numba", "cc")
        assert backend_diagnostics()["compiled"] == status

    def test_disabled_provider_reports_why(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "none")
        assert not compiled_available()
        assert provider_info() is None
        status = backend_diagnostics()["compiled"]
        assert status.startswith("unavailable")
        assert "disabled via" in status

    def test_constructor_raises_with_reason(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "none")
        with pytest.raises(BackendUnavailableError, match="disabled via"):
            CompiledBackend()

    def test_get_backend_falls_back_and_warns_once(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "none")
        monkeypatch.setattr(kernels_module, "_warned_fallbacks", set())
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy_fast'"):
            backend = get_backend("compiled")
        assert type(backend) is NumpyFastBackend
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert type(get_backend("compiled")) is NumpyFastBackend

    def test_simulation_survives_unavailable_compiled(self, monkeypatch):
        """An exported REPRO_KERNEL_BACKEND=compiled can never break a run."""
        monkeypatch.setenv(PROVIDER_ENV_VAR, "none")
        monkeypatch.setenv(kernels_module.BACKEND_ENV_VAR, "compiled")
        monkeypatch.setattr(kernels_module, "_warned_fallbacks", set())
        with pytest.warns(RuntimeWarning, match="unavailable"):
            sim = Simulation(
                lj_melt_system(256, seed=3), [LennardJonesCut(cutoff=2.5)]
            )
        assert sim.backend.name == "numpy_fast"
        sim.run(2)
        assert np.isfinite(sim.total_energy())

    def test_unknown_backend_error_lists_degraded_reasons(self, monkeypatch):
        monkeypatch.setenv(PROVIDER_ENV_VAR, "none")
        with pytest.raises(ValueError, match="compiled: unavailable"):
            get_backend("cuda")

    @needs_compiled
    def test_backend_spec_round_trips(self):
        assert backend_spec(CompiledBackend()) == "compiled"


# ---------------------------------------------------------------------------
# Bitwise contracts vs the numpy implementations (float64)
# ---------------------------------------------------------------------------
@needs_compiled
class TestBitwiseContracts:
    def test_scatter_bitwise_vs_bincount(self):
        rng = np.random.default_rng(5)
        backend = CompiledBackend()
        n, m = 64, 5000
        idx = np.sort(rng.integers(0, n, m))
        vals = rng.normal(size=m)
        out = np.zeros(n)
        backend.scatter_add_sorted(out, idx, vals)
        assert np.array_equal(
            out, np.bincount(idx, weights=vals, minlength=n)
        )

    def test_scatter_add_sorted_vectors_bitwise(self):
        rng = np.random.default_rng(6)
        backend = CompiledBackend()
        n, m = 48, 3000
        idx = np.sort(rng.integers(0, n, m))
        vecs = rng.normal(size=(m, 3))
        out = np.zeros((n, 3))
        backend.scatter_add_sorted(out, idx, vecs)
        for d in range(3):
            assert np.array_equal(
                out[:, d],
                np.bincount(idx, weights=vecs[:, d], minlength=n),
            )

    def test_pair_geometry_bitwise_vs_numpy_fast(self):
        rng = np.random.default_rng(11)
        box = Box([9.0, 10.0, 11.0], periodic=(True, True, False))
        system = AtomSystem(rng.uniform(0, 1, (400, 3)) * box.lengths, box)
        nlist = NeighborList(2.0, 0.3)
        nlist.build(system)
        system.positions += rng.normal(scale=0.02, size=system.positions.shape)
        ref = NumpyFastBackend().current_pairs(system, nlist, 2.0)
        got = CompiledBackend().current_pairs(system, nlist, 2.0)
        for a, b in zip(ref, got):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "periodic", [(True, True, True), (True, False, True)]
    )
    def test_neighbor_build_matches_cell_list_half_pairs(self, periodic):
        rng = np.random.default_rng(8)
        box = Box([12.0, 11.0, 10.0], periodic=periodic)
        positions = rng.uniform(0, 1, (1500, 3)) * box.lengths
        pairs = CompiledBackend().neighbor_pairs(positions, box, 2.0)
        assert pairs is not None
        ref_i, ref_j = cell_list_half_pairs(positions, box, 2.0)
        assert len(pairs[0]) == len(ref_i)
        got_order = np.lexsort((pairs[1], pairs[0]))
        ref_order = np.lexsort((ref_j, ref_i))
        assert np.array_equal(pairs[0][got_order], ref_i[ref_order])
        assert np.array_equal(pairs[1][got_order], ref_j[ref_order])

    def test_neighborlist_csr_identical_with_kernels_attached(self):
        rng = np.random.default_rng(9)
        box = Box([12.0, 12.0, 12.0])
        system = AtomSystem(rng.uniform(0, 12, (1200, 3)), box)
        plain = NeighborList(2.0, 0.3, brute_force_max=0)
        plain.build(system)
        accelerated = NeighborList(2.0, 0.3, brute_force_max=0)
        accelerated.kernels = CompiledBackend()
        accelerated.build(system)
        assert np.array_equal(plain.pair_i, accelerated.pair_i)
        assert np.array_equal(plain.pair_j, accelerated.pair_j)
        assert np.array_equal(plain.csr_offsets, accelerated.csr_offsets)

    def test_build_stats_identical_with_kernels_attached(self):
        """The native count_pairs_within feeding last_neighbors_per_atom
        must agree exactly with the numpy stats pass."""
        system = lj_melt_system(4000, seed=21)
        rng = np.random.default_rng(22)
        system.positions += rng.normal(scale=0.05, size=system.positions.shape)
        plain = NeighborList(2.5, 0.3, brute_force_max=0)
        plain.build(system)
        accelerated = NeighborList(2.5, 0.3, brute_force_max=0)
        accelerated.kernels = CompiledBackend()
        accelerated.build(system)
        assert (
            accelerated.stats.last_neighbors_per_atom
            == plain.stats.last_neighbors_per_atom
        )
        assert accelerated.stats.last_pairs == plain.stats.last_pairs

    def test_float32_positions_use_numpy_path(self):
        """SINGLE-policy builds stay on numpy: pair membership near the
        cutoff is decided in float32 there, which the compiled build
        does not replicate."""
        rng = np.random.default_rng(3)
        positions = rng.uniform(0, 8, (100, 3)).astype(np.float32)
        assert (
            CompiledBackend().neighbor_pairs(positions, Box([8.0] * 3), 2.0)
            is None
        )


# ---------------------------------------------------------------------------
# Oracle matrix: every backend x precision mode x potential family
# ---------------------------------------------------------------------------
def _jittered_case(kind, seed=17):
    """A benchmark system pushed off its lattice.

    The pristine lattices have near-zero forces by symmetry, which
    makes relative force norms meaningless; a small jitter gives O(1)
    forces to compare against the oracle.
    """
    if kind == "lj":
        system = lj_melt_system(500, seed=seed)
        potential = LennardJonesCut(cutoff=2.5)
    else:
        system = eam_solid_system(256, seed=seed)
        potential = EAMAlloy()
    rng = np.random.default_rng(seed + 1)
    system.positions += rng.normal(scale=0.05, size=system.positions.shape)
    return system, potential


class TestOracleMatrix:
    """Forces from each backend track the float64 numpy_ref oracle to
    the precision mode's tier (1e-12 at double)."""

    @pytest.mark.parametrize("kind", ["lj", "eam"])
    @pytest.mark.parametrize("mode", ["single", "mixed", "double"])
    @pytest.mark.parametrize(
        "backend", ["numpy_ref", "numpy_fast", "compiled"]
    )
    def test_forces_within_tier(self, kind, mode, backend):
        if backend == "compiled" and not compiled_available():
            pytest.skip("no compiled provider on this machine")
        system, potential = _jittered_case(kind)
        sim = Simulation(
            system, [potential], backend=backend, precision=mode
        )
        sim.setup()
        forces = sim.system.forces.astype(np.float64)

        ref_system, ref_potential = _jittered_case(kind)
        ref = Simulation(ref_system, [ref_potential], backend="numpy_ref")
        ref.system.positions[...] = sim.system.positions.astype(np.float64)
        ref.setup()
        ref_forces = np.asarray(ref.system.forces, dtype=np.float64)

        err = np.linalg.norm(forces - ref_forces) / np.linalg.norm(ref_forces)
        assert err < policy_for(mode).force_rtol

    @needs_compiled
    def test_short_lj_trajectories_agree(self):
        trajectories = {}
        for backend in ("numpy_fast", "compiled"):
            sim = Simulation(
                lj_melt_system(256, seed=77),
                [LennardJonesCut(cutoff=2.5)],
                dt=0.005,
                backend=backend,
            )
            sim.run(20)
            trajectories[backend] = sim.system.positions.copy()
        np.testing.assert_allclose(
            trajectories["compiled"],
            trajectories["numpy_fast"],
            rtol=1e-10,
            atol=1e-10,
        )


# ---------------------------------------------------------------------------
# Parallel determinism: the headline compiled contract
# ---------------------------------------------------------------------------
@needs_compiled
class TestParallelDeterminism:
    def _run_parallel(self, workers, steps=6, n_atoms=2048):
        from repro.parallel.engine import ParallelForceExecutor
        from repro.suite import get_benchmark

        sim = get_benchmark("lj").build(n_atoms)
        assert sim.backend.name == "compiled"
        executor = ParallelForceExecutor(workers)
        sim.force_executor = executor
        executor.bind(sim)
        try:
            sim.setup()
            for _ in range(steps):
                sim.step()
            return (
                sim.system.positions.copy(),
                sim.potential_energy,
                sim.system.forces.copy(),
            )
        finally:
            executor.close()

    def test_bitwise_identical_across_worker_counts(self, monkeypatch):
        monkeypatch.setenv(kernels_module.BACKEND_ENV_VAR, "compiled")
        states = {w: self._run_parallel(w) for w in (1, 2, 4)}
        positions_1, energy_1, _ = states[1]
        for workers in (2, 4):
            positions, energy, _ = states[workers]
            assert np.array_equal(positions, positions_1)
            assert energy == energy_1

    def test_parallel_matches_serial_compiled(self, monkeypatch):
        monkeypatch.setenv(kernels_module.BACKEND_ENV_VAR, "compiled")
        from repro.suite import get_benchmark

        steps = 3
        serial = get_benchmark("lj").build(2048)
        serial.setup()
        for _ in range(steps):
            serial.step()
        _, _, parallel_forces = self._run_parallel(2, steps=steps)
        delta = np.abs(serial.system.forces - parallel_forces).max()
        assert delta < 1e-10
