"""Tests for the LAMMPS-style k-space accuracy machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.kspace.error import (
    ACONS,
    estimate_alpha,
    estimate_kspace_error,
    estimate_real_space_error,
    good_fft_size,
    select_grid,
)


class TestAcons:
    def test_orders_one_to_seven_present(self):
        assert set(ACONS) == {1, 2, 3, 4, 5, 6, 7}

    def test_row_lengths_match_order(self):
        for order, row in ACONS.items():
            assert len(row) == order

    def test_spot_values_from_lammps(self):
        assert ACONS[1][0] == pytest.approx(2 / 3)
        assert ACONS[5][0] == pytest.approx(1 / 23232)
        assert ACONS[7][-1] == pytest.approx(4887769399 / 37838389248)


class TestAlpha:
    def test_tighter_accuracy_raises_alpha(self):
        assert estimate_alpha(1e-7, 10.0) > estimate_alpha(1e-4, 10.0)

    def test_longer_cutoff_lowers_alpha(self):
        assert estimate_alpha(1e-4, 12.0) < estimate_alpha(1e-4, 10.0)

    def test_known_value(self):
        # (1.35 - 0.15 ln(1e-4)) / 10
        expected = (1.35 - 0.15 * np.log(1e-4)) / 10.0
        assert estimate_alpha(1e-4, 10.0) == pytest.approx(expected)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            estimate_alpha(0.0, 10.0)
        with pytest.raises(ValueError):
            estimate_alpha(1e-4, 0.0)


class TestRealSpaceError:
    def test_decreases_with_alpha(self):
        args = dict(cutoff=10.0, n_atoms=1000, qsqsum=1000.0, volume=1e4)
        assert estimate_real_space_error(0.4, **args) < estimate_real_space_error(
            0.3, **args
        )

    def test_decreases_with_cutoff(self):
        args = dict(alpha=0.3, n_atoms=1000, qsqsum=1000.0, volume=1e4)
        assert estimate_real_space_error(cutoff=12.0, **args) < estimate_real_space_error(
            cutoff=10.0, **args
        )

    def test_positive_arguments_required(self):
        with pytest.raises(ValueError):
            estimate_real_space_error(0.0, 10.0, 100, 1.0, 1.0)


class TestKspaceError:
    def test_finer_grid_reduces_error(self):
        coarse = estimate_kspace_error(2.0, 100.0, 0.3, 32000, 1e4, order=5)
        fine = estimate_kspace_error(1.0, 100.0, 0.3, 32000, 1e4, order=5)
        assert fine < coarse

    def test_higher_order_reduces_error(self):
        e3 = estimate_kspace_error(1.0, 100.0, 0.3, 32000, 1e4, order=3)
        e5 = estimate_kspace_error(1.0, 100.0, 0.3, 32000, 1e4, order=5)
        assert e5 < e3

    def test_unsupported_order_rejected(self):
        with pytest.raises(ValueError):
            estimate_kspace_error(1.0, 100.0, 0.3, 32000, 1e4, order=8)

    @given(h=st.floats(0.5, 3.0))
    @settings(max_examples=20, deadline=None)
    def test_error_positive(self, h):
        assert estimate_kspace_error(h, 100.0, 0.3, 32000, 1e4, order=5) > 0


class TestGoodFftSize:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (7, 8), (8, 8), (11, 12), (13, 15), (97, 100), (101, 108)]
    )
    def test_values(self, n, expected):
        assert good_fft_size(n) == expected

    @given(n=st.integers(1, 2000))
    @settings(max_examples=50, deadline=None)
    def test_result_has_only_small_factors(self, n):
        size = good_fft_size(n)
        assert size >= n
        m = size
        for f in (2, 3, 5):
            while m % f == 0:
                m //= f
        assert m == 1


class TestSelectGrid:
    def test_grid_grows_with_accuracy(self):
        box = np.array([100.0, 100.0, 100.0])
        _, coarse = select_grid(1e-4, box, 10.0, 32000, 32000 * 119.0)
        _, fine = select_grid(1e-7, box, 10.0, 32000, 32000 * 119.0)
        assert np.prod(fine) > np.prod(coarse)

    def test_grid_grows_with_system(self):
        small_box = np.array([68.0] * 3)
        big_box = np.array([273.0] * 3)
        _, small = select_grid(1e-4, small_box, 10.0, 32000, 32000 * 119.0)
        _, big = select_grid(1e-4, big_box, 10.0, 2048000, 2048000 * 119.0)
        assert np.prod(big) > np.prod(small)

    def test_anisotropic_box_anisotropic_grid(self):
        box = np.array([200.0, 100.0, 100.0])
        _, grid = select_grid(1e-4, box, 10.0, 32000, 32000.0)
        assert grid[0] > grid[1]

    def test_selected_grid_meets_threshold(self):
        box = np.array([100.0, 100.0, 100.0])
        accuracy = 1e-5
        alpha, grid = select_grid(
            accuracy, box, 10.0, 32000, 32000 * 119.0, two_charge_force=332.06
        )
        err = estimate_kspace_error(
            box[0] / grid[0], box[0], alpha, 32000, 32000 * 119.0, order=5
        )
        assert err <= accuracy * 332.06
