"""Tests for the initial-configuration builders."""

import numpy as np
import pytest

from repro.md.lattice import (
    build_exclusions,
    chute_system,
    eam_solid_system,
    fcc_positions,
    lj_melt_system,
    polymer_melt_system,
    rhodopsin_proxy_system,
    sc_positions,
)


class TestLattices:
    def test_fcc_atom_count(self):
        positions, box = fcc_positions(3, 2.0)
        assert len(positions) == 4 * 27
        assert np.allclose(box.lengths, 6.0)

    def test_fcc_nearest_neighbor_distance(self):
        positions, box = fcc_positions(3, 2.0)
        d = box.distance(positions[0][None, :], positions[1:])
        assert d.min() == pytest.approx(2.0 / np.sqrt(2.0))

    def test_sc_atom_count(self):
        positions, box = sc_positions(4, 1.5)
        assert len(positions) == 64
        assert np.allclose(box.lengths, 6.0)

    def test_invalid_cells_rejected(self):
        with pytest.raises(ValueError):
            fcc_positions(0, 1.0)
        with pytest.raises(ValueError):
            sc_positions(0, 1.0)


class TestLjMelt:
    def test_density_matches_request(self):
        system = lj_melt_system(500, density=0.8442)
        assert system.density() == pytest.approx(0.8442, rel=1e-9)

    def test_temperature_seeded(self):
        system = lj_melt_system(500, temperature=1.44)
        assert system.temperature() == pytest.approx(1.44, rel=1e-9)

    def test_deterministic_for_seed(self):
        a = lj_melt_system(200, seed=7)
        b = lj_melt_system(200, seed=7)
        assert np.allclose(a.velocities, b.velocities)


class TestPolymerMelt:
    def test_chain_topology(self):
        system = polymer_melt_system(4, 10, pushoff_steps=50)
        assert system.n_atoms == 40
        assert system.topology.n_bonds == 4 * 9
        # Bonds only link consecutive beads of the same chain.
        mol = system.molecule_ids
        bonds = system.topology.bonds
        assert np.all(mol[bonds[:, 0]] == mol[bonds[:, 1]])

    def test_pushoff_removes_hard_overlaps(self):
        system = polymer_melt_system(6, 15, pushoff_steps=150, seed=5)
        from repro.md.neighbor import brute_force_pairs

        i, j = brute_force_pairs(system.positions, system.box, 0.7)
        assert len(i) == 0  # no pair closer than 0.7 sigma

    def test_bond_lengths_reasonable_after_pushoff(self):
        system = polymer_melt_system(4, 12, pushoff_steps=150)
        bonds = system.topology.bonds
        r = system.box.distance(
            system.positions[bonds[:, 0]], system.positions[bonds[:, 1]]
        )
        assert np.all(r < 1.45)  # inside the FENE extensibility limit

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            polymer_melt_system(0, 10)
        with pytest.raises(ValueError):
            polymer_melt_system(1, 1)


class TestChute:
    def test_geometry(self):
        system = chute_system(5, 4, 3)
        assert system.n_atoms == 60
        assert system.is_granular
        assert not system.box.periodic[2]

    def test_bed_is_compressed(self):
        """Adjacent grains overlap slightly so contacts exist at t=0."""
        system = chute_system(5, 5, 3)
        from repro.md.neighbor import brute_force_pairs

        i, j = brute_force_pairs(system.positions, system.box, 1.0)
        assert len(i) > 0

    def test_all_above_floor(self):
        system = chute_system(4, 4, 2)
        assert np.all(system.positions[:, 2] > 0)


class TestEamSolid:
    def test_copper_mass(self):
        system = eam_solid_system(256)
        assert system.masses[0] == pytest.approx(63.546)

    def test_lattice_constant(self):
        system = eam_solid_system(256, lattice_constant=3.615)
        # Box side = cells * a.
        assert system.box.lengths[0] % 3.615 == pytest.approx(0.0, abs=1e-9)


class TestRhodopsinProxy:
    def test_water_geometry(self):
        proxy = rhodopsin_proxy_system(27)
        system = proxy.system
        assert system.n_atoms == 81
        # O-H distances exactly at the SHAKE target.
        i, j = proxy.shake_pairs[:, 0], proxy.shake_pairs[:, 1]
        r = system.box.distance(system.positions[i], system.positions[j])
        assert np.allclose(r, proxy.shake_distances, atol=1e-8)

    def test_charge_neutral(self):
        proxy = rhodopsin_proxy_system(27, n_solute_beads=5)
        assert abs(proxy.system.charges.sum()) < 1e-9

    def test_solute_carved_out_of_solvent(self):
        proxy = rhodopsin_proxy_system(27, n_solute_beads=6)
        system = proxy.system
        solute = system.types == 2
        assert solute.sum() == 6
        waters = system.positions[system.types == 0]
        for bead in system.positions[solute]:
            assert system.box.distance(waters, bead[None, :]).min() > 2.0

    def test_exclusions_cover_molecules(self):
        proxy = rhodopsin_proxy_system(8)
        # 3 exclusion pairs per water (O-H1, O-H2, H1-H2 via angle).
        assert len(proxy.exclusions) == 8 * 3

    def test_build_exclusions_deduplicates(self):
        from repro.md.atoms import Topology

        topo = Topology(
            bonds=np.array([[0, 1], [1, 0]]), angles=np.array([[0, 1, 2]])
        )
        excl = build_exclusions(topo)
        assert len(excl) == 2  # {0,1} once plus {0,2}

    def test_too_many_solute_beads_rejected(self):
        with pytest.raises(ValueError, match="solute chain"):
            rhodopsin_proxy_system(8, n_solute_beads=100)
