"""Tests for the Lennard-Jones pair potential."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.neighbor import NeighborList
from repro.md.potentials.lj import WCA_CUTOFF, LennardJonesCut

from tests.conftest import finite_difference_forces


def _evaluate(positions, box, potential):
    system = AtomSystem(positions, box)
    nlist = NeighborList(potential.cutoff, 0.3)
    nlist.build(system)
    system.forces[:] = 0.0
    result = potential.compute(system, nlist)
    return system, result


class TestPairEnergy:
    def test_minimum_at_r_min(self):
        lj = LennardJonesCut(shift=False)
        r = np.linspace(0.9, 2.4, 2000)
        energies = lj.pair_energy(r)
        r_min = r[np.argmin(energies)]
        assert r_min == pytest.approx(2.0 ** (1 / 6), abs=1e-3)
        assert energies.min() == pytest.approx(-1.0, abs=1e-4)

    def test_zero_crossing_at_sigma(self):
        lj = LennardJonesCut(shift=False)
        assert lj.pair_energy(np.array([1.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_shift_zeroes_energy_at_cutoff(self):
        lj = LennardJonesCut(cutoff=2.5, shift=True)
        edge = lj.pair_energy(np.array([2.5 - 1e-9]))[0]
        assert edge == pytest.approx(0.0, abs=1e-6)

    def test_wca_cutoff_constant(self):
        assert WCA_CUTOFF == pytest.approx(2.0 ** (1 / 6))


class TestForces:
    def test_dimer_force_repulsive_inside_minimum(self):
        box = Box([20, 20, 20])
        system, _ = _evaluate(
            np.array([[5.0, 5, 5], [6.0, 5, 5]]), box, LennardJonesCut()
        )
        # r = 1.0 < r_min: particles repel along +/- x.
        assert system.forces[0, 0] < 0
        assert system.forces[1, 0] > 0

    def test_newtons_third_law(self):
        rng = np.random.default_rng(11)
        box = Box([8, 8, 8])
        system, _ = _evaluate(rng.uniform(0, 8, (30, 3)), box, LennardJonesCut())
        scale = float(np.abs(system.forces).max())
        assert np.allclose(system.forces.sum(axis=0), 0.0, atol=1e-12 * scale)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_forces_match_finite_differences(self, seed):
        """Property: analytic forces equal -grad E on random configs."""
        rng = np.random.default_rng(seed)
        box = Box([8.0, 8.0, 8.0])
        # Keep a minimum separation so the energy surface is smooth
        # enough for central differences.
        positions = rng.uniform(0, 8, (12, 3))
        lj = LennardJonesCut(cutoff=2.5)

        def energy(pos):
            system = AtomSystem(pos, box)
            nlist = NeighborList(2.5, 0.3)
            nlist.build(system)
            return lj.energy_only(system, nlist)

        system, _ = _evaluate(positions, box, lj)
        reference = finite_difference_forces(energy, system.positions, h=1e-6)
        scale = max(1.0, float(np.abs(reference).max()))
        assert np.allclose(system.forces, reference, atol=5e-4 * scale)

    def test_virial_positive_for_compressed_pair(self):
        box = Box([20, 20, 20])
        __, result = _evaluate(
            np.array([[5.0, 5, 5], [6.0, 5, 5]]), box, LennardJonesCut()
        )
        assert result.virial > 0  # repulsive core pushes outward

    def test_interactions_counted(self):
        box = Box([20, 20, 20])
        __, result = _evaluate(
            np.array([[5.0, 5, 5], [6.0, 5, 5], [5.0, 6, 5]]), box, LennardJonesCut()
        )
        assert result.interactions == 3


class TestMultiType:
    def test_cross_type_uses_mixed_tables(self):
        box = Box([20, 20, 20])
        lj = LennardJonesCut(
            epsilon=np.array([1.0, 4.0]),
            sigma=np.array([1.0, 1.0]),
            cutoff=2.5,
            shift=False,
            mix_style="geometric",
        )
        system = AtomSystem(
            np.array([[5.0, 5, 5], [6.1, 5, 5]]), box, types=[0, 1]
        )
        nlist = NeighborList(2.5, 0.3)
        nlist.build(system)
        # eps_mixed = sqrt(1 * 4) = 2 -> energy is twice the eps=1 dimer's.
        e_mixed = lj.energy_only(system, nlist)
        lj_ref = LennardJonesCut(1.0, 1.0, cutoff=2.5, shift=False)
        system_ref = AtomSystem(np.array([[5.0, 5, 5], [6.1, 5, 5]]), box)
        e_ref = lj_ref.energy_only(system_ref, nlist)
        assert e_mixed == pytest.approx(2.0 * e_ref)

    def test_epsilon_sigma_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LennardJonesCut(epsilon=np.array([1.0, 2.0]), sigma=np.array([1.0]))
