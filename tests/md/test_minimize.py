"""Tests for the steepest-descent minimizer and LJ tail corrections."""

import numpy as np
import pytest

from repro.md import LennardJonesCut, Simulation
from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.lattice import fcc_positions, lj_melt_system
from repro.md.minimize import minimize
from repro.md.potentials.lj import LennardJonesCut as LJ


class TestMinimizer:
    def test_dimer_relaxes_to_lj_minimum(self):
        box = Box([20.0, 20.0, 20.0])
        system = AtomSystem(np.array([[9.0, 10, 10], [10.3, 10, 10]]), box)
        sim = Simulation(system, [LennardJonesCut(cutoff=2.5, shift=False)], dt=0.001)
        result = minimize(sim, force_tolerance=1e-6, max_iterations=2000)
        r = float(np.linalg.norm(system.positions[0] - system.positions[1]))
        assert result.converged
        assert r == pytest.approx(2.0 ** (1 / 6), abs=1e-3)
        assert result.final_energy == pytest.approx(-1.0, abs=1e-4)

    def test_energy_never_increases(self):
        system = lj_melt_system(256, temperature=0.0, seed=91)
        rng = np.random.default_rng(92)
        system.positions += rng.normal(0, 0.05, system.positions.shape)
        sim = Simulation(system, [LennardJonesCut(cutoff=2.5)], dt=0.001)
        result = minimize(sim, max_iterations=60)
        assert result.final_energy <= result.initial_energy

    def test_perturbed_crystal_relaxes_back(self):
        positions, box = fcc_positions(4, 1.5874)  # near LJ fcc equilibrium
        rng = np.random.default_rng(93)
        system = AtomSystem(positions + rng.normal(0, 0.03, positions.shape), box)
        sim = Simulation(system, [LennardJonesCut(cutoff=2.5)], dt=0.001)
        result = minimize(sim, force_tolerance=1e-3, max_iterations=300)
        assert result.max_force < 1e-3
        assert result.converged

    def test_already_minimal_converges_immediately(self):
        box = Box([20.0, 20.0, 20.0])
        r_min = 2.0 ** (1 / 6)
        system = AtomSystem(np.array([[9.0, 10, 10], [9.0 + r_min, 10, 10]]), box)
        sim = Simulation(system, [LennardJonesCut(cutoff=2.5, shift=False)], dt=0.001)
        result = minimize(sim, force_tolerance=1e-6)
        assert result.iterations <= 2

    def test_invalid_arguments(self):
        sim = Simulation(lj_melt_system(100), [LennardJonesCut(cutoff=2.5)])
        with pytest.raises(ValueError):
            minimize(sim, force_tolerance=0.0)
        with pytest.raises(ValueError):
            minimize(sim, max_iterations=0)


class TestTailCorrections:
    def test_textbook_energy_value(self):
        lj = LJ(cutoff=2.5, tail_correction=True)
        rho = 0.8442
        expected_per_atom = (
            (8.0 / 3.0) * np.pi * rho * ((1 / 2.5) ** 9 / 3.0 - (1 / 2.5) ** 3)
        )
        assert lj.tail_energy(1000, 1000 / rho) / 1000 == pytest.approx(
            expected_per_atom
        )

    def test_corrections_are_negative_for_attractive_tail(self):
        lj = LJ(cutoff=2.5, tail_correction=True)
        assert lj.tail_energy(1000, 1184.6) < 0
        assert lj.tail_virial(1000, 1184.6) < 0

    def test_corrections_shrink_with_cutoff(self):
        short = LJ(cutoff=2.5, tail_correction=True)
        long = LJ(cutoff=4.0, tail_correction=True)
        assert abs(long.tail_energy(1000, 1184.6)) < abs(
            short.tail_energy(1000, 1184.6)
        )

    def test_applied_in_compute(self):
        system = lj_melt_system(256, temperature=0.0, seed=95)
        plain = Simulation(system.copy(), [LJ(cutoff=2.5, shift=False)], dt=0.005)
        plain.setup()
        tailed = Simulation(
            system.copy(),
            [LJ(cutoff=2.5, shift=False, tail_correction=True)],
            dt=0.005,
        )
        tailed.setup()
        expected = LJ(cutoff=2.5, tail_correction=True).tail_energy(
            system.n_atoms, system.box.volume
        )
        assert tailed.potential_energy - plain.potential_energy == pytest.approx(
            expected, rel=1e-10
        )

    def test_invalid_arguments(self):
        lj = LJ(cutoff=2.5)
        with pytest.raises(ValueError):
            lj.tail_energy(0, 100.0)
        with pytest.raises(ValueError):
            lj.tail_virial(10, 0.0)
