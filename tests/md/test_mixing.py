"""Tests for the pair_modify mixing rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.potentials.mixing import (
    MIX_STYLES,
    build_mixed_tables,
    mix_epsilon,
    mix_sigma,
)

positive = st.floats(0.1, 10.0, allow_nan=False)


class TestSigmaRules:
    def test_arithmetic(self):
        assert mix_sigma(1.0, 3.0, "arithmetic") == pytest.approx(2.0)

    def test_geometric(self):
        assert mix_sigma(1.0, 4.0, "geometric") == pytest.approx(2.0)

    def test_sixthpower(self):
        expected = (0.5 * (1.0 + 4.0**6)) ** (1 / 6)
        assert mix_sigma(1.0, 4.0, "sixthpower") == pytest.approx(expected)

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            mix_sigma(1.0, 1.0, "quadratic")

    @given(s=positive, style=st.sampled_from(MIX_STYLES))
    @settings(max_examples=30, deadline=None)
    def test_same_type_identity(self, s, style):
        """Property: mixing a type with itself returns its own sigma."""
        assert mix_sigma(s, s, style) == pytest.approx(s)

    @given(a=positive, b=positive, style=st.sampled_from(MIX_STYLES))
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, a, b, style):
        assert mix_sigma(a, b, style) == pytest.approx(mix_sigma(b, a, style))


class TestEpsilonRules:
    def test_arithmetic_is_geometric_mean(self):
        assert mix_epsilon(1.0, 4.0, style="arithmetic") == pytest.approx(2.0)

    def test_sixthpower_needs_sigmas(self):
        with pytest.raises(ValueError):
            mix_epsilon(1.0, 1.0, style="sixthpower")

    def test_sixthpower_value(self):
        out = mix_epsilon(1.0, 1.0, 1.0, 2.0, style="sixthpower")
        expected = 2.0 * 1.0 * 1.0 * 8.0 / (1.0 + 64.0)
        assert out == pytest.approx(expected)

    @given(e=positive, s=positive)
    @settings(max_examples=30, deadline=None)
    def test_same_type_identity_all_styles(self, e, s):
        for style in MIX_STYLES:
            assert mix_epsilon(e, e, s, s, style=style) == pytest.approx(e)


class TestTables:
    def test_shapes(self):
        eps, sig = build_mixed_tables(np.array([1.0, 2.0, 3.0]), np.array([1.0, 1.5, 2.0]))
        assert eps.shape == (3, 3)
        assert sig.shape == (3, 3)

    def test_diagonal_is_input(self):
        eps_in = np.array([0.5, 2.0])
        sig_in = np.array([1.0, 3.0])
        eps, sig = build_mixed_tables(eps_in, sig_in, "arithmetic")
        assert np.allclose(np.diag(eps), eps_in)
        assert np.allclose(np.diag(sig), sig_in)

    def test_tables_symmetric(self):
        eps, sig = build_mixed_tables(np.array([0.5, 2.0]), np.array([1.0, 3.0]))
        assert np.allclose(eps, eps.T)
        assert np.allclose(sig, sig.T)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_mixed_tables(np.array([1.0]), np.array([1.0, 2.0]))
