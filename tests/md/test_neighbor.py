"""Tests for the cell-list-backed Verlet neighbor list."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.neighbor import (
    BRUTE_FORCE_ENV_VAR,
    NeighborList,
    brute_force_pairs,
)


def _pair_set(i, j):
    return {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}


class TestBruteForce:
    def test_two_atoms_within_cutoff(self):
        box = Box([10, 10, 10])
        i, j = brute_force_pairs(np.array([[1.0, 1, 1], [2.0, 1, 1]]), box, 1.5)
        assert _pair_set(i, j) == {(0, 1)}

    def test_pair_across_boundary(self):
        box = Box([10, 10, 10])
        i, j = brute_force_pairs(np.array([[0.2, 5, 5], [9.8, 5, 5]]), box, 1.0)
        assert _pair_set(i, j) == {(0, 1)}

    def test_outside_cutoff_excluded(self):
        box = Box([10, 10, 10])
        i, j = brute_force_pairs(np.array([[1.0, 1, 1], [5.0, 1, 1]]), box, 1.5)
        assert len(i) == 0


class TestCellListEquivalence:
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(900, 1500))
    @settings(max_examples=8, deadline=None)
    def test_matches_brute_force_random_configs(self, seed, n):
        """Property: binned build finds exactly the brute-force pairs."""
        rng = np.random.default_rng(seed)
        box = Box([12.0, 15.0, 18.0])
        positions = rng.uniform(0, 1, size=(n, 3)) * box.lengths
        system = AtomSystem(positions, box)
        nlist = NeighborList(1.5, 0.3)
        nlist.build(system)  # n > brute-force threshold -> cell list
        bi, bj = brute_force_pairs(system.positions, box, 1.8)
        assert _pair_set(nlist.pair_i, nlist.pair_j) == _pair_set(bi, bj)

    def test_matches_brute_force_non_periodic_dim(self):
        rng = np.random.default_rng(5)
        box = Box([12.0, 12.0, 20.0], periodic=[True, True, False])
        positions = rng.uniform(0, 1, size=(1200, 3)) * box.lengths
        system = AtomSystem(positions, box)
        nlist = NeighborList(1.5, 0.3)
        nlist.build(system)
        bi, bj = brute_force_pairs(system.positions, box, 1.8)
        assert _pair_set(nlist.pair_i, nlist.pair_j) == _pair_set(bi, bj)


class TestGuards:
    def test_cutoff_exceeding_half_box_rejected(self):
        box = Box([6.0, 6.0, 6.0])
        system = AtomSystem(np.zeros((2, 3)) + 1, box)
        nlist = NeighborList(3.0, 0.5)
        with pytest.raises(ValueError, match="half the smallest periodic box"):
            nlist.build(system)

    def test_non_periodic_dims_exempt_from_guard(self):
        box = Box([20.0, 20.0, 4.0], periodic=[True, True, False])
        system = AtomSystem(np.ones((4, 3)), box)
        NeighborList(3.0, 0.5).build(system)  # z is non-periodic: OK

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NeighborList(0.0, 0.1)
        with pytest.raises(ValueError):
            NeighborList(1.0, -0.1)

    def test_query_before_build_raises(self):
        box = Box([10, 10, 10])
        system = AtomSystem(np.ones((2, 3)), box)
        with pytest.raises(RuntimeError):
            NeighborList(1.0, 0.1).current_pairs(system)


class TestSkinLogic:
    def _system(self):
        rng = np.random.default_rng(7)
        box = Box([10, 10, 10])
        return AtomSystem(rng.uniform(0, 10, (64, 3)), box)

    def test_small_motion_no_rebuild(self):
        system = self._system()
        nlist = NeighborList(2.0, 0.4)
        nlist.build(system)
        system.positions += 0.05  # well under skin/2
        assert not nlist.needs_rebuild(system)

    def test_large_motion_triggers_rebuild(self):
        system = self._system()
        nlist = NeighborList(2.0, 0.4)
        nlist.build(system)
        system.positions[0] += 0.5
        assert nlist.needs_rebuild(system)

    def test_box_change_triggers_rebuild(self):
        system = self._system()
        nlist = NeighborList(2.0, 0.4)
        nlist.build(system)
        system.box.scale(1.01)
        assert nlist.needs_rebuild(system)

    def test_ensure_counts_builds(self):
        system = self._system()
        nlist = NeighborList(2.0, 0.4)
        nlist.build(system)
        for _ in range(5):
            nlist.ensure(system)
        assert nlist.stats.n_builds == 1  # static system never rebuilds
        system.positions[0] += 1.0
        assert nlist.ensure(system)
        assert nlist.stats.n_builds == 2

    def test_current_pairs_filters_to_cutoff(self):
        box = Box([10, 10, 10])
        system = AtomSystem(np.array([[1.0, 1, 1], [2.9, 1, 1]]), box)
        nlist = NeighborList(2.0, 0.5)  # pair stored (r=1.9 < 2.5)
        nlist.build(system)
        system.positions[1, 0] = 3.2  # drift out of cutoff, still listed
        i, j, dr, r = nlist.current_pairs(system)
        assert len(i) == 0
        i, j, dr, r = nlist.current_pairs(system, cutoff=2.5)
        assert len(i) == 1
        assert r[0] == pytest.approx(2.2)


class TestVariants:
    def test_full_list_doubles_pairs(self):
        rng = np.random.default_rng(8)
        box = Box([10, 10, 10])
        system = AtomSystem(rng.uniform(0, 10, (40, 3)), box)
        half = NeighborList(2.0, 0.2)
        full = NeighborList(2.0, 0.2, full=True)
        half.build(system)
        full.build(system)
        assert len(full.pair_i) == 2 * len(half.pair_i)
        # Every (i, j) appears with its mirror (j, i).
        pairs = set(zip(full.pair_i.tolist(), full.pair_j.tolist()))
        assert all((j, i) in pairs for i, j in pairs)

    def test_exclusions_removed(self):
        box = Box([10, 10, 10])
        positions = np.array([[1.0, 1, 1], [1.8, 1, 1], [2.6, 1, 1]])
        system = AtomSystem(positions, box)
        nlist = NeighborList(2.0, 0.2, exclusions=np.array([[0, 1]]))
        nlist.build(system)
        assert (0, 1) not in _pair_set(nlist.pair_i, nlist.pair_j)
        assert (1, 2) in _pair_set(nlist.pair_i, nlist.pair_j)

    def test_neighbors_per_atom_statistic(self):
        # Two atoms within cutoff: each sees one neighbor.
        box = Box([10, 10, 10])
        system = AtomSystem(np.array([[1.0, 1, 1], [2.0, 1, 1]]), box)
        nlist = NeighborList(1.5, 0.3)
        nlist.build(system)
        assert nlist.stats.last_neighbors_per_atom == pytest.approx(1.0)

    def test_rebuild_cadence_statistic(self):
        rng = np.random.default_rng(9)
        box = Box([10, 10, 10])
        system = AtomSystem(rng.uniform(0, 10, (30, 3)), box)
        nlist = NeighborList(2.0, 0.4)
        nlist.build(system)
        for _ in range(10):
            nlist.ensure(system)
        assert nlist.stats.rebuild_every == pytest.approx(10.0)


class TestBruteForceOverride:
    """`brute_force_max` selects the build path explicitly."""

    def _system(self, n=120, seed=4):
        rng = np.random.default_rng(seed)
        box = Box([12.0, 12.0, 12.0])
        return AtomSystem(rng.uniform(0, 12, (n, 3)), box)

    def test_both_paths_agree_on_small_system(self):
        system = self._system()
        cell = NeighborList(1.5, 0.3, brute_force_max=0)  # force cell list
        brute = NeighborList(1.5, 0.3, brute_force_max=10**9)
        cell.build(system)
        brute.build(system)
        assert _pair_set(cell.pair_i, cell.pair_j) == _pair_set(
            brute.pair_i, brute.pair_j
        )

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv(BRUTE_FORCE_ENV_VAR, "17")
        assert NeighborList(1.5, 0.3).brute_force_max == 17
        monkeypatch.delenv(BRUTE_FORCE_ENV_VAR)
        assert NeighborList(1.5, 0.3).brute_force_max == 800

    def test_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BRUTE_FORCE_ENV_VAR, "17")
        assert NeighborList(1.5, 0.3, brute_force_max=5).brute_force_max == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="brute_force_max"):
            NeighborList(1.5, 0.3, brute_force_max=-1)


class TestExclusionFiltering:
    """The searchsorted-based exclusion mask (regression vs np.isin)."""

    def test_bonded_12_13_pairs_masked_identically(self):
        # A 4-bead chain with 1-2 and 1-3 exclusions, everything in range.
        box = Box([20.0, 20.0, 20.0])
        positions = np.array(
            [[5.0, 5, 5], [6.0, 5, 5], [7.0, 5, 5], [8.0, 5, 5]]
        )
        system = AtomSystem(positions, box)
        exclusions = np.array([[0, 1], [1, 2], [2, 3], [0, 2], [1, 3]])
        nlist = NeighborList(3.4, 0.2, exclusions=exclusions)
        nlist.build(system)
        kept = _pair_set(nlist.pair_i, nlist.pair_j)
        assert kept == {(0, 3)}  # only the 1-4 pair survives

    def test_matches_isin_oracle_on_random_lists(self):
        rng = np.random.default_rng(100)
        box = Box([14.0, 14.0, 14.0])
        n = 300
        system = AtomSystem(rng.uniform(0, 14, (n, 3)), box)
        raw = NeighborList(2.0, 0.3)
        raw.build(system)
        all_pairs = np.column_stack([raw.pair_i, raw.pair_j])
        # Exclude a random subset of real pairs plus some absent ones.
        excl = np.vstack(
            [
                all_pairs[rng.choice(len(all_pairs), 40, replace=False)],
                rng.integers(0, n, (20, 2)),
            ]
        )
        nlist = NeighborList(2.0, 0.3, exclusions=excl)
        nlist.build(system)
        # np.isin oracle over encoded unordered keys.
        def encode(i, j):
            lo, hi = np.minimum(i, j), np.maximum(i, j)
            return lo * np.int64(n) + hi

        keep = ~np.isin(
            encode(raw.pair_i, raw.pair_j),
            np.unique(encode(excl[:, 0], excl[:, 1])),
        )
        expected = _pair_set(raw.pair_i[keep], raw.pair_j[keep])
        assert _pair_set(nlist.pair_i, nlist.pair_j) == expected


class TestCSRLayout:
    """The packed (offsets, neighbors) view published by every build."""

    def _built(self, full=False, n=150, seed=6):
        rng = np.random.default_rng(seed)
        box = Box([10.0, 10.0, 10.0])
        system = AtomSystem(rng.uniform(0, 10, (n, 3)), box)
        nlist = NeighborList(2.0, 0.3, full=full)
        nlist.build(system)
        return nlist, system

    @pytest.mark.parametrize("full", [False, True])
    def test_csr_consistent_with_flat_pairs(self, full):
        nlist, system = self._built(full=full)
        n = system.n_atoms
        offsets, neighbors = nlist.csr_offsets, nlist.csr_neighbors
        assert len(offsets) == n + 1
        assert offsets[0] == 0
        assert offsets[-1] == len(nlist.pair_i)
        assert np.all(np.diff(offsets) >= 0)
        # pair_i must be in CSR row-major order with sorted rows.
        assert np.all(np.diff(nlist.pair_i) >= 0)
        rebuilt_i = np.repeat(np.arange(n), np.diff(offsets))
        assert np.array_equal(rebuilt_i, nlist.pair_i)
        assert np.array_equal(neighbors, nlist.pair_j)
        for atom in range(n):
            row = nlist.neighbors_of(atom)
            assert np.all(np.diff(row) >= 0)

    def test_full_rows_mirror(self):
        nlist, system = self._built(full=True)
        pairs = set(zip(nlist.pair_i.tolist(), nlist.pair_j.tolist()))
        for a, b in pairs:
            assert (b, a) in pairs
        # Each atom's CSR row holds every partner it appears with.
        for atom in range(system.n_atoms):
            partners = {b for a, b in pairs if a == atom}
            assert set(nlist.neighbors_of(atom).tolist()) == partners


class TestRandomizedCellListCrossCheck:
    """Randomized oracle sweep: cell-list pairs == brute-force pairs
    over random boxes, densities and skins (satellite of the kernel-
    backend PR; includes the Chute-style ``full=True`` case)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_boxes_densities_skins(self, seed):
        rng = np.random.default_rng(2_022_000 + seed)
        lengths = rng.uniform(8.0, 16.0, size=3)
        box = Box(lengths)
        density = rng.uniform(0.2, 0.9)
        # Cap n so the O(N^2) brute-force oracle stays cheap.
        n = min(1500, max(50, int(density * box.volume)))
        positions = rng.uniform(0, 1, (n, 3)) * lengths
        system = AtomSystem(positions, box)
        cutoff = rng.uniform(1.0, 1.8)
        skin = rng.uniform(0.05, 0.5)
        full = bool(seed % 2)  # alternate half/full flavours
        nlist = NeighborList(cutoff, skin, full=full, brute_force_max=0)
        nlist.build(system)
        bi, bj = brute_force_pairs(
            box.wrap(system.positions), box, cutoff + skin
        )
        assert _pair_set(nlist.pair_i, nlist.pair_j) == _pair_set(bi, bj)
        if full:
            assert len(nlist.pair_i) == 2 * len(bi)

    def test_chute_like_full_list(self):
        rng = np.random.default_rng(321)
        box = Box([11.0, 11.0, 18.0], periodic=[True, True, False])
        positions = rng.uniform(0, 1, (900, 3)) * box.lengths
        system = AtomSystem(positions, box, radii=np.full(900, 0.5))
        nlist = NeighborList(1.0, 0.1, full=True, brute_force_max=0)
        nlist.build(system)
        bi, bj = brute_force_pairs(box.wrap(system.positions), box, 1.1)
        assert _pair_set(nlist.pair_i, nlist.pair_j) == _pair_set(bi, bj)
        assert len(nlist.pair_i) == 2 * len(bi)
