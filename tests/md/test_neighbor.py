"""Tests for the cell-list-backed Verlet neighbor list."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.neighbor import NeighborList, brute_force_pairs


def _pair_set(i, j):
    return {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}


class TestBruteForce:
    def test_two_atoms_within_cutoff(self):
        box = Box([10, 10, 10])
        i, j = brute_force_pairs(np.array([[1.0, 1, 1], [2.0, 1, 1]]), box, 1.5)
        assert _pair_set(i, j) == {(0, 1)}

    def test_pair_across_boundary(self):
        box = Box([10, 10, 10])
        i, j = brute_force_pairs(np.array([[0.2, 5, 5], [9.8, 5, 5]]), box, 1.0)
        assert _pair_set(i, j) == {(0, 1)}

    def test_outside_cutoff_excluded(self):
        box = Box([10, 10, 10])
        i, j = brute_force_pairs(np.array([[1.0, 1, 1], [5.0, 1, 1]]), box, 1.5)
        assert len(i) == 0


class TestCellListEquivalence:
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(900, 1500))
    @settings(max_examples=8, deadline=None)
    def test_matches_brute_force_random_configs(self, seed, n):
        """Property: binned build finds exactly the brute-force pairs."""
        rng = np.random.default_rng(seed)
        box = Box([12.0, 15.0, 18.0])
        positions = rng.uniform(0, 1, size=(n, 3)) * box.lengths
        system = AtomSystem(positions, box)
        nlist = NeighborList(1.5, 0.3)
        nlist.build(system)  # n > brute-force threshold -> cell list
        bi, bj = brute_force_pairs(system.positions, box, 1.8)
        assert _pair_set(nlist.pair_i, nlist.pair_j) == _pair_set(bi, bj)

    def test_matches_brute_force_non_periodic_dim(self):
        rng = np.random.default_rng(5)
        box = Box([12.0, 12.0, 20.0], periodic=[True, True, False])
        positions = rng.uniform(0, 1, size=(1200, 3)) * box.lengths
        system = AtomSystem(positions, box)
        nlist = NeighborList(1.5, 0.3)
        nlist.build(system)
        bi, bj = brute_force_pairs(system.positions, box, 1.8)
        assert _pair_set(nlist.pair_i, nlist.pair_j) == _pair_set(bi, bj)


class TestGuards:
    def test_cutoff_exceeding_half_box_rejected(self):
        box = Box([6.0, 6.0, 6.0])
        system = AtomSystem(np.zeros((2, 3)) + 1, box)
        nlist = NeighborList(3.0, 0.5)
        with pytest.raises(ValueError, match="half the smallest periodic box"):
            nlist.build(system)

    def test_non_periodic_dims_exempt_from_guard(self):
        box = Box([20.0, 20.0, 4.0], periodic=[True, True, False])
        system = AtomSystem(np.ones((4, 3)), box)
        NeighborList(3.0, 0.5).build(system)  # z is non-periodic: OK

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NeighborList(0.0, 0.1)
        with pytest.raises(ValueError):
            NeighborList(1.0, -0.1)

    def test_query_before_build_raises(self):
        box = Box([10, 10, 10])
        system = AtomSystem(np.ones((2, 3)), box)
        with pytest.raises(RuntimeError):
            NeighborList(1.0, 0.1).current_pairs(system)


class TestSkinLogic:
    def _system(self):
        rng = np.random.default_rng(7)
        box = Box([10, 10, 10])
        return AtomSystem(rng.uniform(0, 10, (64, 3)), box)

    def test_small_motion_no_rebuild(self):
        system = self._system()
        nlist = NeighborList(2.0, 0.4)
        nlist.build(system)
        system.positions += 0.05  # well under skin/2
        assert not nlist.needs_rebuild(system)

    def test_large_motion_triggers_rebuild(self):
        system = self._system()
        nlist = NeighborList(2.0, 0.4)
        nlist.build(system)
        system.positions[0] += 0.5
        assert nlist.needs_rebuild(system)

    def test_box_change_triggers_rebuild(self):
        system = self._system()
        nlist = NeighborList(2.0, 0.4)
        nlist.build(system)
        system.box.scale(1.01)
        assert nlist.needs_rebuild(system)

    def test_ensure_counts_builds(self):
        system = self._system()
        nlist = NeighborList(2.0, 0.4)
        nlist.build(system)
        for _ in range(5):
            nlist.ensure(system)
        assert nlist.stats.n_builds == 1  # static system never rebuilds
        system.positions[0] += 1.0
        assert nlist.ensure(system)
        assert nlist.stats.n_builds == 2

    def test_current_pairs_filters_to_cutoff(self):
        box = Box([10, 10, 10])
        system = AtomSystem(np.array([[1.0, 1, 1], [2.9, 1, 1]]), box)
        nlist = NeighborList(2.0, 0.5)  # pair stored (r=1.9 < 2.5)
        nlist.build(system)
        system.positions[1, 0] = 3.2  # drift out of cutoff, still listed
        i, j, dr, r = nlist.current_pairs(system)
        assert len(i) == 0
        i, j, dr, r = nlist.current_pairs(system, cutoff=2.5)
        assert len(i) == 1
        assert r[0] == pytest.approx(2.2)


class TestVariants:
    def test_full_list_doubles_pairs(self):
        rng = np.random.default_rng(8)
        box = Box([10, 10, 10])
        system = AtomSystem(rng.uniform(0, 10, (40, 3)), box)
        half = NeighborList(2.0, 0.2)
        full = NeighborList(2.0, 0.2, full=True)
        half.build(system)
        full.build(system)
        assert len(full.pair_i) == 2 * len(half.pair_i)
        # Every (i, j) appears with its mirror (j, i).
        pairs = set(zip(full.pair_i.tolist(), full.pair_j.tolist()))
        assert all((j, i) in pairs for i, j in pairs)

    def test_exclusions_removed(self):
        box = Box([10, 10, 10])
        positions = np.array([[1.0, 1, 1], [1.8, 1, 1], [2.6, 1, 1]])
        system = AtomSystem(positions, box)
        nlist = NeighborList(2.0, 0.2, exclusions=np.array([[0, 1]]))
        nlist.build(system)
        assert (0, 1) not in _pair_set(nlist.pair_i, nlist.pair_j)
        assert (1, 2) in _pair_set(nlist.pair_i, nlist.pair_j)

    def test_neighbors_per_atom_statistic(self):
        # Two atoms within cutoff: each sees one neighbor.
        box = Box([10, 10, 10])
        system = AtomSystem(np.array([[1.0, 1, 1], [2.0, 1, 1]]), box)
        nlist = NeighborList(1.5, 0.3)
        nlist.build(system)
        assert nlist.stats.last_neighbors_per_atom == pytest.approx(1.0)

    def test_rebuild_cadence_statistic(self):
        rng = np.random.default_rng(9)
        box = Box([10, 10, 10])
        system = AtomSystem(rng.uniform(0, 10, (30, 3)), box)
        nlist = NeighborList(2.0, 0.4)
        nlist.build(system)
        for _ in range(10):
            nlist.ensure(system)
        assert nlist.stats.rebuild_every == pytest.approx(10.0)
