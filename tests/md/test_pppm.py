"""Tests for the PPPM mesh Ewald solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.kspace.ewald import EwaldSummation
from repro.md.kspace.pppm import PPPM, bspline_weights


class TestBsplineWeights:
    @given(
        frac=st.floats(0.0, 31.999, allow_nan=False),
        order=st.integers(2, 7),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_of_unity(self, frac, order):
        """Property: assignment weights always sum to exactly 1."""
        nodes, weights = bspline_weights(np.array([frac]), order)
        assert weights.shape == (1, order)
        assert weights.sum() == pytest.approx(1.0, abs=1e-12)

    @given(frac=st.floats(0.0, 31.999), order=st.integers(2, 7))
    @settings(max_examples=60, deadline=None)
    def test_weights_non_negative(self, frac, order):
        _, weights = bspline_weights(np.array([frac]), order)
        assert np.all(weights >= -1e-14)

    def test_nodes_bracket_particle(self):
        nodes, weights = bspline_weights(np.array([10.3]), 5)
        # The five nearest integers to 10.3 are 8..12.
        assert nodes[0].tolist() == [8, 9, 10, 11, 12]

    def test_particle_on_node_order2(self):
        nodes, weights = bspline_weights(np.array([5.0]), 2)
        # Linear (cloud-in-cell) assignment: all weight on the node.
        total_on_5 = weights[0][nodes[0] == 5].sum()
        assert total_on_5 == pytest.approx(1.0)

    def test_vectorized_over_particles(self):
        nodes, weights = bspline_weights(np.array([1.2, 7.9, 15.5]), 5)
        assert nodes.shape == (3, 5)
        assert np.allclose(weights.sum(axis=1), 1.0)


def _random_system(seed=3, n=50):
    rng = np.random.default_rng(seed)
    box = Box([9.0, 9.0, 9.0])
    q = rng.normal(size=n)
    q -= q.mean()
    return AtomSystem(rng.uniform(0, 9, (n, 3)), box, charges=q)


class TestAgainstEwald:
    def test_energy_converges_to_ewald(self):
        system = _random_system()
        reference = EwaldSummation(1.0, accuracy=1e-10).energy_only(system)
        errors = []
        for grid in ((16, 16, 16), (32, 32, 32)):
            pppm = PPPM(accuracy=1e-4, cutoff=3.0, alpha=1.0, grid=grid)
            errors.append(abs(pppm.energy_only(system) - reference) / abs(reference))
        assert errors[1] < errors[0] < 1e-2

    def test_forces_converge_to_ewald(self):
        system = _random_system(seed=5)
        system.forces[:] = 0.0
        EwaldSummation(1.0, accuracy=1e-10).compute(system)
        reference = system.forces.copy()
        rms_ref = np.sqrt(np.mean(reference**2))
        system.forces[:] = 0.0
        PPPM(accuracy=1e-4, cutoff=3.0, alpha=1.0, grid=(32, 32, 32)).compute(system)
        rel = np.sqrt(np.mean((system.forces - reference) ** 2)) / rms_ref
        assert rel < 1e-3

    def test_accuracy_driven_setup_meets_threshold(self):
        """Let PPPM pick alpha + grid from the threshold, then verify the
        realized force error against a tight Ewald reference."""
        system = _random_system(seed=7)
        system.forces[:] = 0.0
        pppm = PPPM(accuracy=1e-4, cutoff=3.0)
        pppm.setup(system)
        pppm.compute(system)
        mesh_forces = system.forces.copy()
        system.forces[:] = 0.0
        EwaldSummation(pppm.alpha, accuracy=1e-12).compute(system)
        rms_err = np.sqrt(np.mean((mesh_forces - system.forces) ** 2))
        # LAMMPS' absolute accuracy: threshold * two-charge reference.
        assert rms_err < 1e-4 * 10.0  # generous two-charge normalization

    def test_virial_tracks_ewald(self):
        system = _random_system(seed=11)
        ref = EwaldSummation(1.0, accuracy=1e-10)
        system.forces[:] = 0.0
        ref_virial = ref.compute(system).virial
        system.forces[:] = 0.0
        pm = PPPM(accuracy=1e-4, cutoff=3.0, alpha=1.0, grid=(32, 32, 32))
        assert pm.compute(system).virial == pytest.approx(ref_virial, rel=1e-2)


class TestBehaviour:
    def test_grid_points_property(self):
        system = _random_system()
        pppm = PPPM(accuracy=1e-4, cutoff=3.0, grid=(8, 10, 12))
        assert pppm.grid_points == 0  # before setup
        pppm.setup(system)
        assert pppm.grid_points == 8 * 10 * 12

    def test_interactions_reported_as_grid_points(self):
        system = _random_system()
        pppm = PPPM(accuracy=1e-4, cutoff=3.0, alpha=1.0, grid=(16, 16, 16))
        result = pppm.compute(system)
        assert result.interactions == 16**3

    def test_tighter_accuracy_selects_larger_grid(self):
        system = _random_system()
        loose = PPPM(accuracy=1e-4, cutoff=3.0)
        loose.setup(system)
        tight = PPPM(accuracy=1e-6, cutoff=3.0)
        tight.setup(system)
        assert tight.grid_points > loose.grid_points

    def test_setup_refreshes_on_box_change(self):
        system = _random_system()
        pppm = PPPM(accuracy=1e-4, cutoff=3.0)
        pppm.compute(system)
        first = pppm.grid
        system.box.scale(1.5)
        system.positions *= 1.5
        pppm.compute(system)
        assert pppm.grid != first or pppm.grid_points > 0

    def test_charged_system_rejected(self):
        box = Box([8, 8, 8])
        system = AtomSystem(np.ones((2, 3)), box, charges=[1.0, 0.0])
        with pytest.raises(ValueError, match="charge-neutral"):
            PPPM(accuracy=1e-4, cutoff=3.0).compute(system)

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ValueError):
            PPPM(accuracy=0.0, cutoff=3.0)

    def test_exclusion_correction_applied(self):
        box = Box([20.0, 20.0, 20.0])
        system = AtomSystem(
            np.array([[9.5, 10, 10], [10.5, 10, 10]]), box, charges=[1.0, -1.0]
        )
        pppm = PPPM(
            accuracy=1e-5,
            cutoff=4.0,
            alpha=0.8,
            grid=(36, 36, 36),
            exclusions=np.array([[0, 1]]),
        )
        energy = pppm.energy_only(system)
        assert abs(energy) < 0.02  # dimer self-interaction removed
