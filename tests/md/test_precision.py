"""Precision-policy tests: parsing, the RunConfig surface, per-mode
oracle tolerances, and the restart rules for narrow-storage snapshots."""

import warnings

import numpy as np
import pytest

import repro.md.simulation as simulation_module
from repro.md import (
    Precision,
    PrecisionPolicy,
    RunConfig,
    Simulation,
    parse_precision,
    policy_for,
)
from repro.md.kernels import get_backend
from repro.md.lattice import lj_melt_system
from repro.md.potentials.lj import LennardJonesCut
from repro.md.restart import SnapshotError, restore_simulation, save_snapshot

MODES = ("single", "mixed", "double")


def _lj_sim(n=256, precision=None, backend=None, seed=7):
    return Simulation(
        lj_melt_system(n, seed=seed),
        [LennardJonesCut(cutoff=2.5)],
        dt=0.005,
        skin=0.3,
        backend=backend,
        precision=precision,
    )


# ---------------------------------------------------------------------------
# Parsing and the policy table
# ---------------------------------------------------------------------------
class TestParsePrecision:
    @pytest.mark.parametrize("spec, expected", [
        ("single", Precision.SINGLE),
        ("MIXED", Precision.MIXED),
        ("Double", Precision.DOUBLE),
        ("  double  ", Precision.DOUBLE),
        (Precision.SINGLE, Precision.SINGLE),
        (None, Precision.DOUBLE),
    ])
    def test_accepted_spellings(self, spec, expected):
        assert parse_precision(spec) is expected

    def test_unknown_mode_lists_valid_ones(self):
        with pytest.raises(ValueError, match="'single', 'mixed', 'double'"):
            parse_precision("quad")

    def test_wrong_type_is_type_error(self):
        with pytest.raises(TypeError, match="Precision, str, or None"):
            parse_precision(32)

    def test_policy_dtype_triples(self):
        single = policy_for("single")
        mixed = policy_for("mixed")
        double = policy_for(None)
        assert (single.storage_dtype, single.compute_dtype,
                single.accumulate_dtype) == (np.float32,) * 3
        assert mixed.storage_dtype == np.float64
        assert mixed.compute_dtype == np.float32
        assert mixed.accumulate_dtype == np.float64
        assert double.is_double and not mixed.is_double
        assert policy_for(mixed) is mixed  # pass-through

    def test_enum_reexported_from_md(self):
        import repro.md as md

        assert "Precision" in md.__all__
        assert "RunConfig" in md.__all__
        assert isinstance(policy_for("mixed"), PrecisionPolicy)


# ---------------------------------------------------------------------------
# The engine honors the policy
# ---------------------------------------------------------------------------
class TestEnginePolicy:
    @pytest.mark.parametrize("mode", MODES)
    def test_storage_dtype_and_finite_run(self, mode):
        sim = _lj_sim(precision=mode)
        policy = policy_for(mode)
        assert sim.system.positions.dtype == policy.storage_dtype
        assert sim.system.forces.dtype == policy.storage_dtype
        sim.setup()
        sim.run(5)
        assert np.isfinite(sim.total_energy())
        assert sim.system.positions.dtype == policy.storage_dtype

    @pytest.mark.parametrize("mode", MODES)
    def test_oracle_force_tolerance(self, mode):
        """numpy_fast under each mode tracks the float64 numpy_ref
        oracle within the policy's force_rtol on an identical, evolved
        configuration (the t=0 lattice has symmetric near-zero forces)."""
        sim = _lj_sim(n=500, precision=mode)
        sim.setup()
        sim.run(10)
        forces = sim.system.forces.astype(np.float64)

        ref = _lj_sim(n=500, backend=get_backend("numpy_ref"))
        ref.system.positions[...] = sim.system.positions.astype(np.float64)
        ref.setup()
        ref_forces = np.asarray(ref.system.forces, dtype=np.float64)

        err = np.linalg.norm(forces - ref_forces) / np.linalg.norm(ref_forces)
        assert err < policy_for(mode).force_rtol

    def test_double_mode_bitwise_equals_default(self):
        default = _lj_sim()
        default.setup()
        default.run(10)
        explicit = _lj_sim(precision="double")
        explicit.setup()
        explicit.run(10)
        assert np.array_equal(default.system.positions,
                              explicit.system.positions)

    def test_set_precision_reprecisions_serial_engine(self):
        sim = _lj_sim()
        sim.setup()
        sim.run(2)
        sim.set_precision("single")
        assert sim.system.positions.dtype == np.float32
        sim.run(2)
        assert np.isfinite(sim.total_energy())


# ---------------------------------------------------------------------------
# RunConfig and the deprecation shim
# ---------------------------------------------------------------------------
class TestRunConfig:
    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RunConfig(steps=-1)

    def test_typo_precision_fails_fast(self):
        with pytest.raises(ValueError, match="unknown precision mode"):
            RunConfig(steps=1, precision="doubble")

    def test_run_config_equivalent_to_bare_int(self):
        a = _lj_sim()
        a.setup()
        a.run(8)
        b = _lj_sim()
        b.setup()
        b.run(RunConfig(steps=8))
        assert np.array_equal(a.system.positions, b.system.positions)

    def test_run_config_can_switch_precision_and_backend(self):
        sim = _lj_sim()
        sim.setup()
        sim.run(RunConfig(steps=3, precision="mixed", backend="numpy_fast"))
        assert sim.precision.mode is Precision.MIXED
        assert np.isfinite(sim.total_energy())

    def test_config_plus_kwargs_is_type_error(self):
        sim = _lj_sim()
        sim.setup()
        with pytest.raises(TypeError, match="inside the RunConfig"):
            sim.run(RunConfig(steps=1), reset_timers=True)

    def test_legacy_kwargs_warn_exactly_once_per_process(self, monkeypatch):
        monkeypatch.setattr(
            simulation_module, "_LEGACY_RUN_KWARGS_WARNED", False
        )
        sim = _lj_sim()
        sim.setup()
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            sim.run(1, reset_timers=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            sim.run(1, reset_timers=True)

    def test_bare_int_run_does_not_warn(self):
        sim = _lj_sim()
        sim.setup()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sim.run(2)


# ---------------------------------------------------------------------------
# Restart rules for narrow-storage snapshots
# ---------------------------------------------------------------------------
class TestPrecisionRestart:
    def test_single_snapshot_roundtrips_float32_bitwise(self, tmp_path):
        sim = _lj_sim(precision="single")
        sim.setup()
        sim.run(5)
        path = tmp_path / "single.npz"
        save_snapshot(sim, path)

        restored = _lj_sim(precision="single")
        restore_simulation(restored, path)
        assert restored.system.positions.dtype == np.float32
        assert np.array_equal(restored.system.positions, sim.system.positions)
        assert np.array_equal(restored.system.velocities,
                              sim.system.velocities)

    def test_cross_mode_restore_refused_without_cast(self, tmp_path):
        sim = _lj_sim(precision="single")
        sim.setup()
        sim.run(3)
        path = tmp_path / "single.npz"
        save_snapshot(sim, path)

        target = _lj_sim(precision="double")
        with pytest.raises(SnapshotError, match="pass cast='double'"):
            restore_simulation(target, path)

    def test_cast_opt_in_converts_explicitly(self, tmp_path):
        sim = _lj_sim(precision="single")
        sim.setup()
        sim.run(3)
        path = tmp_path / "single.npz"
        save_snapshot(sim, path)

        target = _lj_sim(precision="double")
        restore_simulation(target, path, cast="double")
        assert target.system.positions.dtype == np.float64
        assert np.array_equal(
            target.system.positions,
            sim.system.positions.astype(np.float64),
        )
        target.run(2)
        assert np.isfinite(target.total_energy())

    def test_cast_must_match_target_mode(self, tmp_path):
        sim = _lj_sim(precision="single")
        sim.setup()
        save_snapshot(sim, tmp_path / "s.npz")
        target = _lj_sim(precision="double")
        with pytest.raises(SnapshotError, match="does not match"):
            restore_simulation(target, tmp_path / "s.npz", cast="mixed")


# ---------------------------------------------------------------------------
# Simulation / executor policy negotiation (serial-side checks; the
# worker-pool variants live in tests/parallel/test_engine.py)
# ---------------------------------------------------------------------------
class TestPolicyNegotiation:
    def test_explicit_policy_object_accepted(self):
        sim = _lj_sim(precision=policy_for("mixed"))
        assert sim.precision.mode is Precision.MIXED

    def test_conflicting_executor_mode_raises(self):
        from repro.parallel.engine import ParallelForceExecutor

        executor = ParallelForceExecutor(2, precision="single")
        try:
            with pytest.raises(ValueError, match="construct both"):
                Simulation(
                    lj_melt_system(256, seed=7),
                    [LennardJonesCut(cutoff=2.5)],
                    dt=0.005,
                    skin=0.3,
                    force_executor=executor,
                    precision="double",
                )
        finally:
            executor.close()

    def test_simulation_adopts_executor_mode(self):
        from repro.parallel.engine import ParallelForceExecutor

        executor = ParallelForceExecutor(2, precision="mixed")
        try:
            sim = Simulation(
                lj_melt_system(256, seed=7),
                [LennardJonesCut(cutoff=2.5)],
                dt=0.005,
                skin=0.3,
                force_executor=executor,
            )
            assert sim.precision.mode is Precision.MIXED
            assert sim.system.positions.dtype == np.float64
        finally:
            executor.close()

    def test_set_precision_refused_on_parallel_executor(self):
        from repro.parallel.engine import ParallelForceExecutor

        executor = ParallelForceExecutor(2, precision="double")
        try:
            sim = Simulation(
                lj_melt_system(256, seed=7),
                [LennardJonesCut(cutoff=2.5)],
                dt=0.005,
                skin=0.3,
                force_executor=executor,
            )
            with pytest.raises(ValueError, match="typed at start-up"):
                sim.set_precision("single")
        finally:
            executor.close()
