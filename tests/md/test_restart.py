"""Tests for snapshot/restart serialization."""

import numpy as np
import pytest

from repro.md.restart import load_system, restore_simulation, save_snapshot
from repro.suite import get_benchmark


class TestRoundTrip:
    def test_system_state_preserved(self, tmp_path):
        sim = get_benchmark("lj").build(200)
        sim.run(20)
        path = save_snapshot(sim, tmp_path / "snap.npz")
        system, step = load_system(path)
        assert step == 20
        assert np.array_equal(system.positions, sim.system.positions)
        assert np.array_equal(system.velocities, sim.system.velocities)
        assert np.array_equal(system.images, sim.system.images)

    def test_topology_preserved(self, tmp_path):
        sim = get_benchmark("chain").build(200)
        sim.run(5)
        path = save_snapshot(sim, tmp_path / "snap.npz")
        system, _ = load_system(path)
        assert np.array_equal(system.topology.bonds, sim.system.topology.bonds)

    def test_granular_state_preserved(self, tmp_path):
        sim = get_benchmark("chute").build(150)
        sim.run(30)
        path = save_snapshot(sim, tmp_path / "snap.npz")
        system, _ = load_system(path)
        assert system.is_granular
        assert np.array_equal(system.omega, sim.system.omega)
        assert np.array_equal(system.radii, sim.system.radii)

    def test_version_guard(self, tmp_path):
        sim = get_benchmark("lj").build(100)
        path = save_snapshot(sim, tmp_path / "snap.npz")
        data = dict(np.load(path))
        data["format_version"] = np.array([99])
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="format"):
            load_system(path)


class TestTrajectoryContinuity:
    def test_restart_reproduces_uninterrupted_nve_run(self, tmp_path):
        """Checkpoint at step 30, continue to 60: identical to a
        straight 60-step run (bitwise, for deterministic NVE)."""
        straight = get_benchmark("lj").build(200, seed=123)
        straight.run(60)

        first = get_benchmark("lj").build(200, seed=123)
        first.run(30)
        path = save_snapshot(first, tmp_path / "mid.npz")

        resumed = get_benchmark("lj").build(200, seed=123)
        restore_simulation(resumed, path)
        assert resumed.step_number == 30
        resumed.run(30)

        assert np.allclose(
            resumed.system.positions, straight.system.positions, atol=1e-12
        )
        assert np.allclose(
            resumed.system.velocities, straight.system.velocities, atol=1e-12
        )

    def test_atom_count_mismatch_rejected(self, tmp_path):
        small = get_benchmark("lj").build(100)
        path = save_snapshot(small, tmp_path / "snap.npz")
        big = get_benchmark("lj").build(500)
        with pytest.raises(ValueError, match="atoms"):
            restore_simulation(big, path)
