"""Tests for snapshot/restart serialization."""

import numpy as np
import pytest

from repro.md.restart import load_system, restore_simulation, save_snapshot
from repro.suite import get_benchmark


class TestRoundTrip:
    def test_system_state_preserved(self, tmp_path):
        sim = get_benchmark("lj").build(200)
        sim.run(20)
        path = save_snapshot(sim, tmp_path / "snap.npz")
        system, step = load_system(path)
        assert step == 20
        assert np.array_equal(system.positions, sim.system.positions)
        assert np.array_equal(system.velocities, sim.system.velocities)
        assert np.array_equal(system.images, sim.system.images)

    def test_topology_preserved(self, tmp_path):
        sim = get_benchmark("chain").build(200)
        sim.run(5)
        path = save_snapshot(sim, tmp_path / "snap.npz")
        system, _ = load_system(path)
        assert np.array_equal(system.topology.bonds, sim.system.topology.bonds)

    def test_granular_state_preserved(self, tmp_path):
        sim = get_benchmark("chute").build(150)
        sim.run(30)
        path = save_snapshot(sim, tmp_path / "snap.npz")
        system, _ = load_system(path)
        assert system.is_granular
        assert np.array_equal(system.omega, sim.system.omega)
        assert np.array_equal(system.radii, sim.system.radii)

    def test_version_guard(self, tmp_path):
        sim = get_benchmark("lj").build(100)
        path = save_snapshot(sim, tmp_path / "snap.npz")
        data = dict(np.load(path))
        data["format_version"] = np.array([99])
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="format"):
            load_system(path)


class TestTrajectoryContinuity:
    def test_restart_reproduces_uninterrupted_nve_run(self, tmp_path):
        """Checkpoint at step 30, continue to 60: identical to a
        straight 60-step run (bitwise, for deterministic NVE)."""
        straight = get_benchmark("lj").build(200, seed=123)
        straight.run(60)

        first = get_benchmark("lj").build(200, seed=123)
        first.run(30)
        path = save_snapshot(first, tmp_path / "mid.npz")

        resumed = get_benchmark("lj").build(200, seed=123)
        restore_simulation(resumed, path)
        assert resumed.step_number == 30
        resumed.run(30)

        # Format v2 restores are exact: bitwise, not merely allclose.
        assert np.array_equal(
            resumed.system.positions, straight.system.positions
        )
        assert np.array_equal(
            resumed.system.velocities, straight.system.velocities
        )
        assert np.array_equal(resumed.system.forces, straight.system.forces)

    def test_restore_does_not_recompute_forces(self, tmp_path):
        """v2 restores take forces/energy from the file verbatim — a
        recompute would double-advance granular contact histories."""
        sim = get_benchmark("lj").build(200)
        sim.run(10)
        path = save_snapshot(sim, tmp_path / "snap.npz")

        resumed = get_benchmark("lj").build(200)
        calls = []
        original = resumed._compute_forces
        resumed._compute_forces = lambda *a, **kw: (
            calls.append(1),
            original(*a, **kw),
        )[1]
        restore_simulation(resumed, path)
        assert calls == []
        assert np.array_equal(resumed.system.forces, sim.system.forces)
        assert resumed.potential_energy == sim.potential_energy

    def test_atom_count_mismatch_rejected(self, tmp_path):
        small = get_benchmark("lj").build(100)
        path = save_snapshot(small, tmp_path / "snap.npz")
        big = get_benchmark("lj").build(500)
        with pytest.raises(ValueError, match="atoms"):
            restore_simulation(big, path)


class TestLegacyV1:
    def _write_v1(self, sim, path):
        """Downgrade a fresh v2 snapshot to the legacy v1 layout."""
        v2 = path.with_suffix(".v2.npz")
        save_snapshot(sim, v2)
        data = dict(np.load(v2))
        payload = {
            key: value
            for key, value in data.items()
            if not key.startswith(("hist", "neigh_"))
            and key not in ("state_json", "potential_energy", "virial")
        }
        payload["format_version"] = np.array([1])
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **payload)
        return path

    def test_v1_rejected_without_opt_in(self, tmp_path):
        sim = get_benchmark("lj").build(200)
        sim.run(5)
        path = self._write_v1(sim, tmp_path / "snap.npz")
        fresh = get_benchmark("lj").build(200)
        with pytest.raises(ValueError, match="v1"):
            restore_simulation(fresh, path)

    def test_v1_upgrade_with_opt_in(self, tmp_path):
        sim = get_benchmark("lj").build(200)
        sim.run(5)
        path = self._write_v1(sim, tmp_path / "snap.npz")
        fresh = get_benchmark("lj").build(200)
        snapshot = restore_simulation(fresh, path, allow_v1=True)
        assert snapshot.version == 1
        assert fresh.step_number == 5
        assert np.array_equal(fresh.system.positions, sim.system.positions)
        assert np.array_equal(fresh.system.velocities, sim.system.velocities)
