"""Tests for the Figure 1 timestep loop orchestration."""

import numpy as np
import pytest

from repro.md import LennardJonesCut, Simulation
from repro.md.lattice import lj_melt_system
from repro.md.timers import TASKS, TaskTimers


class TestTaskTimers:
    def test_all_tasks_initialized(self):
        timers = TaskTimers()
        assert set(timers.seconds) == set(TASKS)

    def test_accumulation(self):
        timers = TaskTimers()
        with timers.time("Pair"):
            sum(range(1000))
        assert timers.seconds["Pair"] > 0

    def test_unknown_task_rejected(self):
        timers = TaskTimers()
        with pytest.raises(KeyError):
            with timers.time("Gpu"):
                pass

    def test_fractions_sum_to_one(self):
        timers = TaskTimers()
        with timers.time("Pair"):
            sum(range(2000))
        with timers.time("Neigh"):
            sum(range(2000))
        assert sum(timers.fractions().values()) == pytest.approx(1.0)

    def test_reset(self):
        timers = TaskTimers()
        with timers.time("Pair"):
            pass
        timers.reset()
        assert timers.total == 0.0

    def test_zero_total_fractions(self):
        assert all(v == 0.0 for v in TaskTimers().fractions().values())


def _sim(n=256, **kwargs):
    system = lj_melt_system(n, seed=55)
    return Simulation(system, [LennardJonesCut(cutoff=2.5)], **kwargs)


class TestSimulation:
    def test_setup_runs_once_implicitly(self):
        sim = _sim()
        sim.step()  # implicit setup
        assert sim.step_number == 1

    def test_run_negative_rejected(self):
        with pytest.raises(ValueError):
            _sim().run(-1)

    def test_run_zero_is_noop(self):
        sim = _sim()
        sim.run(0)
        assert sim.step_number == 0

    def test_counters_track_work(self):
        sim = _sim()
        sim.run(20)
        assert sim.counts.timesteps == 20
        assert sim.counts.pair_interactions > 0
        assert sim.counts.pair_interactions_per_step > 0

    def test_thermo_logged_on_interval(self):
        sim = _sim(thermo_every=5)
        sim.run(20)
        assert len(sim.thermo) == 4

    def test_task_breakdown_covers_pair_and_neigh(self):
        sim = _sim()
        sim.run(30)
        breakdown = sim.task_breakdown()
        assert breakdown["Pair"] > 0.2
        assert breakdown["Neigh"] > 0.0
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_timesteps_per_second_positive(self):
        sim = _sim()
        sim.run(10)
        assert 0 < sim.timesteps_per_second() < float("inf")

    def test_neighbor_list_derived_from_potentials(self):
        sim = _sim(skin=0.4)
        assert sim.neighbor.cutoff == pytest.approx(2.5)
        assert sim.neighbor.skin == pytest.approx(0.4)
        assert not sim.neighbor.full

    def test_full_list_for_granular(self):
        from repro.suite import get_benchmark

        sim = get_benchmark("chute").build(150)
        assert sim.neighbor.full

    def test_virial_and_energy_refreshed(self):
        sim = _sim()
        sim.run(5)
        assert np.isfinite(sim.potential_energy)
        assert np.isfinite(sim.virial)

    def test_n_constraints_property(self):
        sim = _sim()
        assert sim.n_constraints == 0
        from repro.suite import get_benchmark

        rhodo = get_benchmark("rhodo").build(120)
        assert rhodo.n_constraints > 0


class TestPerTaskAccounting:
    """The engine's Figure 3-style breakdown accounts for every second."""

    def test_task_times_sum_to_step_time(self):
        sim = _sim()
        sim.run(8)
        # "Other" absorbs the untimed remainder of each step, so the
        # eight task timers together equal the measured step wall-clock.
        assert sim.timers.total == pytest.approx(sim.step_seconds, rel=1e-9)
        assert sim.step_seconds > 0.0

    def test_other_task_is_populated(self):
        sim = _sim()
        sim.run(8)
        assert sim.timers.seconds["Other"] >= 0.0
        breakdown = sim.task_breakdown()
        assert set(breakdown) == set(TASKS)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_breakdown_has_pair_and_neigh_signal(self):
        sim = _sim()
        sim.run(8)
        assert sim.timers.seconds["Pair"] > 0.0
        assert sim.timers.seconds["Neigh"] > 0.0
