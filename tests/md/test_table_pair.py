"""Tests for the tabulated pair potential."""

import numpy as np
import pytest

from repro.md import LennardJonesCut, Simulation
from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.lattice import lj_melt_system
from repro.md.neighbor import NeighborList
from repro.md.potentials.table import TabulatedPair

from tests.conftest import finite_difference_forces


@pytest.fixture
def lj_table():
    lj = LennardJonesCut(cutoff=2.5, shift=True)
    return TabulatedPair.from_potential(lj, r_min=0.8, r_max=2.5, n_samples=800)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            TabulatedPair(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            TabulatedPair(np.array([1, 2, 2, 3]), np.zeros(4))
        with pytest.raises(ValueError):
            TabulatedPair(np.array([-1, 1, 2, 3]), np.zeros(4))

    def test_cutoff_from_last_sample(self, lj_table):
        assert lj_table.cutoff == pytest.approx(2.5)

    def test_energy_zero_at_cutoff(self, lj_table):
        assert lj_table.pair_energy(np.array([2.4999]))[0] == pytest.approx(
            0.0, abs=1e-4
        )


class TestFidelity:
    def test_reproduces_lj_profile(self, lj_table):
        lj = LennardJonesCut(cutoff=2.5, shift=True)
        r = np.linspace(0.9, 2.4, 300)
        assert np.allclose(lj_table.pair_energy(r), lj.pair_energy(r), atol=1e-6)

    def test_forces_match_finite_differences(self, lj_table):
        rng = np.random.default_rng(43)
        box = Box([8.0, 8.0, 8.0])
        positions = rng.uniform(0, 8, (10, 3))

        def energy(pos):
            system = AtomSystem(pos, box)
            nlist = NeighborList(2.5, 0.3)
            nlist.build(system)
            return lj_table.energy_only(system, nlist)

        system = AtomSystem(positions, box)
        nlist = NeighborList(2.5, 0.3)
        nlist.build(system)
        system.forces[:] = 0.0
        lj_table.compute(system, nlist)
        reference = finite_difference_forces(energy, positions, h=1e-6)
        scale = max(1.0, float(np.abs(reference).max()))
        assert np.allclose(system.forces, reference, atol=1e-3 * scale)

    def test_md_agrees_with_analytic_lj(self, lj_table):
        """A short NVE run with the table tracks the analytic LJ run."""
        analytic = Simulation(
            lj_melt_system(256, seed=61), [LennardJonesCut(cutoff=2.5)], dt=0.005
        )
        tabulated = Simulation(lj_melt_system(256, seed=61), [lj_table], dt=0.005)
        analytic.run(50)
        tabulated.run(50)
        assert np.allclose(
            analytic.system.positions, tabulated.system.positions, atol=1e-3
        )

    def test_energy_conserved_in_nve(self, lj_table):
        sim = Simulation(lj_melt_system(256, seed=63), [lj_table], dt=0.005)
        sim.setup()
        e0 = sim.total_energy()
        sim.run(150)
        assert sim.total_energy() == pytest.approx(e0, rel=1e-3)


class TestClamp:
    def test_below_range_linear_extrapolation(self, lj_table):
        e_close = lj_table.pair_energy(np.array([0.5]))[0]
        e_edge = lj_table.pair_energy(np.array([0.8]))[0]
        assert e_close > e_edge > 0  # steeply repulsive, finite, monotone

    def test_core_force_is_repulsive(self, lj_table):
        box = Box([10.0, 10.0, 10.0])
        system = AtomSystem(np.array([[5.0, 5, 5], [5.5, 5, 5]]), box)
        nlist = NeighborList(2.5, 0.3)
        nlist.build(system)
        lj_table.compute(system, nlist)
        assert system.forces[0, 0] < 0  # pushed apart
