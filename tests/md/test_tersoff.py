"""Tests for the Tersoff three-body bond-order potential (silicon)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.kernels import available_backends
from repro.md.lattice import diamond_positions, tersoff_silicon_system
from repro.md.neighbor import NeighborList
from repro.md.potentials.tersoff import Tersoff, TersoffParameters

from tests.conftest import finite_difference_forces


@pytest.fixture
def tersoff():
    return Tersoff()


def _compute(positions, box, pot):
    system = AtomSystem(np.asarray(positions, dtype=float), box, masses=28.0855)
    nlist = NeighborList(pot.cutoff, 0.5, full=True)
    nlist.build(system)
    system.forces[:] = 0.0
    result = pot.compute(system, nlist)
    return result, system


def _energy_of(positions, box, pot):
    return _compute(positions, box, pot)[0].energy


class TestIngredients:
    def test_cutoff_plateaus(self, tersoff):
        p = tersoff.params
        fc, dfc = tersoff.cutoff_function(np.array([1.0, p.R - p.D, p.R + p.D, 4.0]))
        np.testing.assert_allclose(fc, [1.0, 1.0, 0.0, 0.0], atol=1e-14)
        # Exactly at the ramp ends rounding may leave x a ulp inside, so
        # the slope is merely ~1e-15 rather than an exact zero.
        np.testing.assert_allclose(dfc, 0.0, atol=1e-12)

    def test_cutoff_midpoint_half(self, tersoff):
        fc, _ = tersoff.cutoff_function(np.array([tersoff.params.R]))
        assert fc[0] == pytest.approx(0.5)

    def test_cutoff_slope_matches_finite_difference(self, tersoff):
        r = np.linspace(2.71, 2.99, 25)
        _, dfc = tersoff.cutoff_function(r)
        h = 1e-7
        fp, _ = tersoff.cutoff_function(r + h)
        fm, _ = tersoff.cutoff_function(r - h)
        np.testing.assert_allclose(dfc, (fp - fm) / (2 * h), atol=1e-6)

    def test_radial_terms_match_finite_difference(self, tersoff):
        r = np.linspace(1.8, 2.9, 20)
        h = 1e-7
        for fn in (tersoff.repulsive, tersoff.attractive):
            _, dv = fn(r)
            vp, _ = fn(r + h)
            vm, _ = fn(r - h)
            np.testing.assert_allclose(dv, (vp - vm) / (2 * h), rtol=1e-6)

    def test_angular_minimum_at_h(self, tersoff):
        # g is minimal where cos(theta) = h; its derivative vanishes there.
        p = tersoff.params
        g_min, dg = tersoff.angular(np.array([p.h]))
        assert dg[0] == pytest.approx(0.0, abs=1e-12)
        g_away, _ = tersoff.angular(np.array([p.h + 0.3]))
        assert g_away[0] > g_min[0]

    def test_angular_derivative_matches_finite_difference(self, tersoff):
        cos = np.linspace(-0.95, 0.95, 30)
        _, dg = tersoff.angular(cos)
        h = 1e-7
        gp, _ = tersoff.angular(cos + h)
        gm, _ = tersoff.angular(cos - h)
        np.testing.assert_allclose(dg, (gp - gm) / (2 * h), rtol=1e-5, atol=1e-8)

    def test_bond_order_is_one_without_triplets(self, tersoff):
        b, db = tersoff.bond_order(np.array([0.0]))
        assert b[0] == 1.0
        assert db[0] == 0.0

    def test_bond_order_decreases_with_coordination(self, tersoff):
        zeta = np.linspace(0.5, 8.0, 20)
        b, db = tersoff.bond_order(zeta)
        assert np.all(np.diff(b) < 0)
        assert np.all(db < 0)

    def test_bond_order_derivative_matches_finite_difference(self, tersoff):
        # db is only ~1e-5 against b ~ 1, so a wider step keeps the
        # central difference above cancellation noise.
        zeta = np.linspace(0.2, 6.0, 25)
        _, db = tersoff.bond_order(zeta)
        h = 1e-4
        bp, _ = tersoff.bond_order(zeta + h)
        bm, _ = tersoff.bond_order(zeta - h)
        np.testing.assert_allclose(db, (bp - bm) / (2 * h), rtol=1e-4)


class TestDimerAndTrimer:
    def test_dimer_energy_matches_helper(self, tersoff):
        box = Box(np.full(3, 40.0))
        pos = np.array([[10.0, 10.0, 10.0], [12.2, 10.0, 10.0]])
        result, _ = _compute(pos, box, tersoff)
        assert result.energy == pytest.approx(tersoff.dimer_energy(2.2), rel=1e-12)

    def test_dimer_hand_computed(self, tersoff):
        # Below the ramp fc = 1 and zeta = 0, so E = A e^{-l1 r} - B e^{-l2 r}.
        p = tersoff.params
        r = 2.3
        expected = p.A * np.exp(-p.lambda1 * r) - p.B * np.exp(-p.lambda2 * r)
        assert tersoff.dimer_energy(r) == pytest.approx(expected, rel=1e-14)

    def test_beyond_cutoff_is_zero(self, tersoff):
        box = Box(np.full(3, 40.0))
        pos = np.array([[10.0, 10.0, 10.0], [13.2, 10.0, 10.0]])
        result, system = _compute(pos, box, tersoff)
        assert result.energy == 0.0
        assert np.all(system.forces == 0.0)

    def test_trimer_angular_term_lowers_binding(self, tersoff):
        # A third atom raises zeta, so b < 1 weakens each bond relative
        # to three independent dimers.
        box = Box(np.full(3, 40.0))
        r = 2.35
        trimer = np.array(
            [[10.0, 10.0, 10.0], [10.0 + r, 10.0, 10.0], [10.0, 10.0 + r, 10.0]]
        )
        e_trimer = _energy_of(trimer, box, tersoff)
        e_dimer = tersoff.dimer_energy(r)
        e_diag = tersoff.dimer_energy(r * np.sqrt(2.0))
        assert e_trimer > 2 * e_dimer + e_diag

    def test_trimer_forces_match_finite_difference(self, tersoff):
        box = Box(np.full(3, 40.0))
        pos = np.array(
            [[10.0, 10.0, 10.0], [12.3, 10.2, 9.9], [10.3, 12.2, 10.4]]
        )
        _, system = _compute(pos, box, tersoff)
        fd = finite_difference_forces(lambda p: _energy_of(p, box, tersoff), pos)
        np.testing.assert_allclose(system.forces, fd, atol=5e-7)


class TestCrystal:
    def test_cohesive_energy_near_literature(self, tersoff):
        # Tersoff's T3 silicon binds at -4.63 eV/atom at a = 5.432 A.
        system = tersoff_silicon_system(512, temperature=0.0)
        nlist = NeighborList(tersoff.cutoff, 0.5, full=True)
        nlist.build(system)
        energy = tersoff.energy_only(system, nlist)
        assert energy / system.n_atoms == pytest.approx(-4.63, abs=0.01)

    def test_perfect_crystal_forces_vanish(self, tersoff):
        pos, box = diamond_positions(2, 5.431)
        _, system = _compute(pos, box, tersoff)
        assert np.abs(system.forces).max() < 1e-10

    def test_diamond_first_shell_inside_cutoff_second_outside(self):
        # a sqrt(3)/4 = 2.35 A < 3.0 A cutoff < a/sqrt(2) = 3.84 A: only
        # the four bonded neighbours interact.
        a = 5.431
        assert a * np.sqrt(3.0) / 4.0 < Tersoff().cutoff < a / np.sqrt(2.0)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=5, deadline=None)
    def test_forces_match_finite_difference(self, seed):
        pot = Tersoff()
        rng = np.random.default_rng(seed)
        # One cell is smaller than cutoff+skin allows; two cells (64
        # atoms) give a 10.9 A box with headroom.
        pos, box = diamond_positions(2, 5.431)
        pos = pos + rng.normal(scale=0.12, size=pos.shape)
        _, system = _compute(pos, box, pot)
        fd = finite_difference_forces(lambda p: _energy_of(p, box, pot), pos)
        scale = max(np.abs(system.forces).max(), 1.0)
        np.testing.assert_allclose(system.forces, fd, atol=1e-4 * scale)

    def test_virial_matches_scaling_derivative(self, tersoff):
        # W = sum r.f equals -dE/dlambda under uniform dilation.
        rng = np.random.default_rng(7)
        pos, box = diamond_positions(2, 5.431)
        pos = pos + rng.normal(scale=0.1, size=pos.shape)

        def at_scale(lam):
            scaled = Box(box.lengths * lam)
            return _compute(pos * lam, scaled, tersoff)[0]

        h = 1e-6
        fd = (at_scale(1 + h).energy - at_scale(1 - h).energy) / (2 * h)
        assert at_scale(1.0).virial == pytest.approx(-fd, rel=1e-6)

    def test_interactions_reported_as_directed_pairs(self, tersoff):
        pos, box = diamond_positions(2, 5.431)
        result, _ = _compute(pos, box, tersoff)
        # 4 bonded neighbours per atom, both directions counted.
        assert result.interactions == 4 * len(pos)


class TestBackendParity:
    def test_all_backends_match_oracle(self):
        states = {}
        for name in available_backends():
            pot = Tersoff()
            pot.backend = name
            rng = np.random.default_rng(3)
            pos, box = diamond_positions(2, 5.431)
            pos = pos + rng.normal(scale=0.08, size=pos.shape)
            result, system = _compute(pos, box, pot)
            states[name] = (result.energy, result.virial, system.forces.copy())
        e_ref, w_ref, f_ref = states["numpy_ref"]
        for name, (e, w, f) in states.items():
            assert e == pytest.approx(e_ref, abs=1e-12), name
            assert w == pytest.approx(w_ref, abs=1e-12), name
            np.testing.assert_allclose(
                f, f_ref, atol=1e-12, err_msg=f"backend {name}"
            )


class TestDynamics:
    def test_nve_conserves_energy(self):
        from repro.suite.registry import get_benchmark

        sim = get_benchmark("tersoff").build(64)
        sim.run(1)
        e0 = sim.total_energy()
        sim.run(300)
        drift = abs(sim.total_energy() - e0) / sim.system.n_atoms
        assert drift < 1e-7

    def test_snapshot_roundtrip_bitwise(self, tmp_path):
        from repro.md.restart import restore_simulation, save_snapshot
        from repro.suite.registry import get_benchmark

        defn = get_benchmark("tersoff")
        sim = defn.build(64)
        sim.run(10)
        path = tmp_path / "tersoff.npz"
        save_snapshot(sim, path)
        twin = defn.build(64)
        restore_simulation(twin, path)
        sim.run(15)
        twin.run(15)
        assert np.array_equal(sim.system.positions, twin.system.positions)
        assert np.array_equal(sim.system.velocities, twin.system.velocities)
        assert np.array_equal(sim.system.forces, twin.system.forces)


class TestParameters:
    def test_default_cutoff(self):
        assert TersoffParameters().cutoff == pytest.approx(3.0)

    def test_halo_width_adds_cutoff(self, tersoff):
        assert tersoff.halo_width(3.5) == pytest.approx(3.5 + tersoff.cutoff)

    def test_needs_full_list(self, tersoff):
        assert tersoff.needs_full_list
