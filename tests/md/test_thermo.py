"""Tests for thermodynamic computes and the thermo log."""

import numpy as np
import pytest

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.thermo import ThermoLog, pressure


class TestPressure:
    def test_ideal_gas_limit(self):
        """With zero virial, P = N kB T / V exactly."""
        rng = np.random.default_rng(41)
        box = Box([10.0, 10.0, 10.0])
        system = AtomSystem(rng.uniform(0, 10, (100, 3)), box)
        system.seed_velocities(1.5, rng)
        # P V = 2/3 KE for an ideal gas.
        expected = 2.0 * system.kinetic_energy() / (3.0 * box.volume)
        assert pressure(system, 0.0) == pytest.approx(expected)

    def test_positive_virial_raises_pressure(self):
        box = Box([10.0, 10.0, 10.0])
        system = AtomSystem(np.ones((10, 3)), box)
        assert pressure(system, 100.0) > pressure(system, 0.0)


class TestThermoLog:
    def _system(self):
        rng = np.random.default_rng(43)
        box = Box([10, 10, 10])
        system = AtomSystem(rng.uniform(0, 10, (20, 3)), box)
        system.seed_velocities(1.0, rng)
        return system

    def test_interval_logic(self):
        log = ThermoLog(every=10)
        assert log.should_log(10)
        assert log.should_log(20)
        assert not log.should_log(15)

    def test_disabled_log(self):
        log = ThermoLog(every=0)
        assert not log.should_log(100)

    def test_record_fields(self):
        system = self._system()
        log = ThermoLog(every=1)
        snap = log.record(5, system, potential_energy=-3.0, virial=1.0)
        assert snap.step == 5
        assert snap.total_energy == pytest.approx(
            system.kinetic_energy() - 3.0
        )
        assert snap.volume == pytest.approx(1000.0)
        assert len(log) == 1

    def test_series_extraction(self):
        system = self._system()
        log = ThermoLog(every=1)
        for step in range(3):
            log.record(step, system, potential_energy=-float(step), virial=0.0)
        assert np.allclose(log.series("potential_energy"), [0.0, -1.0, -2.0])
        assert log.series("step").tolist() == [0.0, 1.0, 2.0]

    def test_series_empty(self):
        assert len(ThermoLog().series("temperature")) == 0

    def test_snapshot_tuple(self):
        system = self._system()
        log = ThermoLog(every=1)
        snap = log.record(1, system, potential_energy=0.0, virial=0.0)
        assert len(snap.as_tuple()) == 7
