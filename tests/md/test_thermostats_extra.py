"""Tests for the Berendsen and velocity-rescale thermostat fixes."""

import numpy as np
import pytest

from repro.md import LennardJonesCut, Simulation
from repro.md.fixes import BerendsenThermostat, VelocityRescale
from repro.md.lattice import lj_melt_system


def _sim(fix, n=256, temperature=0.4):
    system = lj_melt_system(n, temperature=temperature, seed=201)
    return Simulation(
        system, [LennardJonesCut(cutoff=2.5)], fixes=[fix], dt=0.004, skin=0.3
    )


class TestBerendsen:
    def test_heats_toward_target(self):
        sim = _sim(BerendsenThermostat(1.2, damp=0.1), temperature=0.3)
        sim.run(500)
        assert sim.system.temperature() == pytest.approx(1.2, rel=0.25)

    def test_cools_toward_target(self):
        sim = _sim(BerendsenThermostat(0.5, damp=0.1), temperature=1.6)
        sim.run(500)
        assert sim.system.temperature() == pytest.approx(0.5, rel=0.3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BerendsenThermostat(0.0, 1.0)
        with pytest.raises(ValueError):
            BerendsenThermostat(1.0, 0.0)

    def test_still_system_untouched(self):
        from repro.md.atoms import AtomSystem
        from repro.md.box import Box

        system = AtomSystem(np.ones((3, 3)), Box([10, 10, 10]))
        BerendsenThermostat(1.0, 0.5).post_force(system, 0.01, 1)
        assert np.allclose(system.velocities, 0.0)

    def test_rescale_bounded_for_cold_start(self):
        """The lambda guard keeps a near-zero-T start from exploding."""
        sim = _sim(BerendsenThermostat(1.0, damp=0.001), temperature=0.01)
        sim.run(5)
        assert sim.system.temperature() < 1.0  # at most 2x per step


class TestVelocityRescale:
    def test_exact_rescale_applied(self):
        system = lj_melt_system(200, temperature=1.5, seed=7)
        VelocityRescale(0.9, every=1).post_force(system, 0.004, step=1)
        assert system.temperature() == pytest.approx(0.9, rel=1e-9)

    def test_regulates_during_dynamics(self):
        sim = _sim(VelocityRescale(0.9, every=1), temperature=1.5)
        sim.run(50)
        # The final half-kick perturbs the exact value slightly.
        assert sim.system.temperature() == pytest.approx(0.9, rel=0.2)

    def test_interval_respected(self):
        fix = VelocityRescale(0.9, every=10)
        sim = _sim(fix, temperature=1.5)
        sim.run(3)  # steps 1-3: no rescale yet
        assert sim.system.temperature() > 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VelocityRescale(0.0)
        with pytest.raises(ValueError):
            VelocityRescale(1.0, every=0)
