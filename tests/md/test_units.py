"""Tests for the unit-system conversions."""

import pytest

from repro.md.units import (
    LJ_ARGON,
    METAL,
    REAL_LIKE,
    timesteps_to_ns,
    unit_system_for,
)


class TestUnitSystems:
    def test_lj_argon_tau_is_about_2ps(self):
        """The textbook value: one LJ time unit for argon ~ 2.16 ps."""
        assert LJ_ARGON.time_unit_fs == pytest.approx(2156, rel=0.01)

    def test_real_like_time_unit(self):
        """sqrt(g/mol A^2 / (kcal/mol)) = 48.89 fs — the basis of the
        rhodo deck's dt = 0.0409 (= 2 fs)."""
        assert REAL_LIKE.time_unit_fs == pytest.approx(48.89, rel=1e-3)
        assert REAL_LIKE.dt_to_fs(0.0409) == pytest.approx(2.0, rel=0.01)

    def test_metal_time_unit_is_ps(self):
        assert METAL.dt_to_fs(0.005) == pytest.approx(5.0)

    def test_lj_deck_timestep_matches_workload(self):
        """0.005 tau ~ 10.8 fs — the value in the lj workload params."""
        from repro.perfmodel.workloads import get_workload

        assert LJ_ARGON.dt_to_fs(0.005) == pytest.approx(
            get_workload("lj").timestep_fs, rel=0.01
        )

    def test_temperature_round_trip(self):
        t_internal = REAL_LIKE.kelvin_to_internal(300.0)
        assert t_internal == pytest.approx(0.596, rel=1e-2)
        assert REAL_LIKE.internal_to_kelvin(t_internal) == pytest.approx(300.0)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            METAL.dt_to_fs(0.0)


class TestLookups:
    def test_benchmark_mapping(self):
        assert unit_system_for("lj") is LJ_ARGON
        assert unit_system_for("chain") is LJ_ARGON
        assert unit_system_for("eam") is METAL
        assert unit_system_for("rhodo") is REAL_LIKE

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            unit_system_for("water")


class TestHeadlineArithmetic:
    def test_paper_ns_per_day_check(self):
        """10.77 TS/s * 86400 s * 2 fs = 1.86e6 fs/day ~ 1.9 ns/day —
        the paper rounds to 2 ns/day."""
        steps_per_day = 10.77 * 86_400
        assert timesteps_to_ns(steps_per_day, 2.0) == pytest.approx(1.861, rel=1e-3)

    def test_invalid_timestep(self):
        with pytest.raises(ValueError):
            timesteps_to_ns(100, 0.0)
