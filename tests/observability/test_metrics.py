"""Metrics registry: instrument semantics, snapshots, JSONL export."""

from __future__ import annotations

import json

import pytest

from repro.md.lattice import lj_melt_system
from repro.md.potentials.lj import LennardJonesCut
from repro.md.simulation import Simulation
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1.0)

    def test_sync_total_mirrors_external_cumulative(self):
        counter = Counter("c")
        counter.sync_total(10)
        counter.sync_total(10)
        counter.sync_total(12)
        assert counter.value == 12.0
        with pytest.raises(ValueError):
            counter.sync_total(5)


class TestGauge:
    def test_set_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(-1.5)
        assert gauge.value == -1.5


class TestHistogram:
    def test_bucketing_and_stats(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.mean == pytest.approx(56.2 / 4)
        snap = hist.snapshot()
        assert snap["min"] == 0.5 and snap["max"] == 50.0
        assert snap["buckets"][-1] == {"le": None, "count": 1}

    def test_boundary_lands_in_its_le_bucket(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(1.0)
        assert hist.counts == [1, 0]  # le=1.0 includes the bound

    def test_empty_snapshot_has_null_extrema(self):
        snap = Histogram("h").snapshot()
        assert snap["min"] is None and snap["max"] is None

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_kind_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.gauge("zeta").set(1.0)
        registry.counter("alpha").inc()
        snap = registry.snapshot()
        assert list(snap) == ["alpha", "zeta"]
        json.dumps(snap)  # must not raise

    def test_write_snapshot_appends_jsonl(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("steps").inc(5)
        path = tmp_path / "sub" / "metrics.jsonl"
        registry.write_snapshot(path, step=5, experiment="lj")
        registry.counter("steps").inc(5)
        registry.write_snapshot(path, step=10)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [rec["step"] for rec in lines] == [5, 10]
        assert lines[0]["experiment"] == "lj"
        assert lines[1]["metrics"]["steps"]["value"] == 10.0

    def test_concurrent_jsonl_snapshots_stay_line_atomic(self, tmp_path):
        """Engine workers append snapshots to one file concurrently.

        Every line must remain parseable JSON with its writer's tag —
        no interleaved or torn records.
        """
        import threading

        path = tmp_path / "metrics.jsonl"
        n_workers, n_snaps = 4, 25
        barrier = threading.Barrier(n_workers)

        def worker(wid: int) -> None:
            registry = MetricsRegistry()
            counter = registry.counter("steps")
            barrier.wait()
            for i in range(n_snaps):
                counter.inc()
                registry.write_snapshot(path, step=i, worker=wid)

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == n_workers * n_snaps
        per_worker: dict[int, list[int]] = {}
        for rec in lines:
            per_worker.setdefault(rec["worker"], []).append(rec["step"])
            assert rec["metrics"]["steps"]["value"] == rec["step"] + 1
        for wid in range(n_workers):
            assert sorted(per_worker[wid]) == list(range(n_snaps))

    def test_concurrent_increments_on_shared_registry(self, tmp_path):
        """A single registry hammered from threads loses no increments."""
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("ops")

        def worker() -> None:
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000.0
        path = tmp_path / "final.jsonl"
        registry.write_snapshot(path, step=0)
        rec = json.loads(path.read_text())
        assert rec["metrics"]["ops"]["value"] == 8000.0


class TestSimulationMetrics:
    def test_run_populates_engine_metrics(self):
        registry = MetricsRegistry()
        sim = Simulation(
            lj_melt_system(256, seed=3),
            [LennardJonesCut(cutoff=2.5)],
            dt=0.005,
            skin=0.3,
            metrics=registry,
        )
        sim.run(10)
        snap = registry.snapshot()
        assert snap["md_steps_total"]["value"] == 10.0
        assert snap["md_step_seconds"]["count"] == 10
        assert snap["md_pair_interactions_total"]["value"] > 0
        assert snap["md_neighbor_pairs"]["value"] > 0
        assert "md_energy_drift_rel" in snap
        # NVE at a sane timestep: drift stays small over 10 steps.
        assert abs(snap["md_energy_drift_rel"]["value"]) < 1e-2

    def test_attach_metrics_after_build(self):
        sim = Simulation(
            lj_melt_system(256, seed=3),
            [LennardJonesCut(cutoff=2.5)],
            dt=0.005,
            skin=0.3,
        )
        sim.run(2)
        registry = MetricsRegistry()
        sim.attach_metrics(registry)
        sim.run(3)
        assert registry.snapshot()["md_steps_total"]["value"] == 3.0
        sim.attach_metrics(None)
        sim.run(1)
        assert registry.snapshot()["md_steps_total"]["value"] == 3.0
