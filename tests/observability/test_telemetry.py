"""Hardware-telemetry subsystem: providers, sampler, attribution.

Covers the ISSUE 7 acceptance set: RAPL counter wraparound, provider
auto-detection with clean model fallback on machines without powercap,
sample-interval/span-timeline energy attribution, MIN_RUN_SECONDS
warning behavior, and the provenance block the benchmarks embed.
"""

from __future__ import annotations

import json

import pytest

from repro.observability import MetricsRegistry
from repro.observability.telemetry import (
    UNTRACKED,
    DramRaplProvider,
    IntervalSample,
    ModelProvider,
    ProcStatProvider,
    RaplProvider,
    TelemetrySampler,
    attribute_energy,
    cgroup_cpu_quota,
    detect_provider,
    local_instance_spec,
    platform_provenance,
    provider_diagnostics,
    render_energy_table,
)
from repro.observability.telemetry.providers import PROVIDER_ENV_VAR
from repro.platforms.power import (
    UnderSampledRunWarning,
    reset_under_sample_warnings,
)


@pytest.fixture(autouse=True)
def _isolate_provider_env(monkeypatch):
    """Detection tests must not inherit a forced provider (e.g. CI
    pins REPRO_POWER_PROVIDER=model job-wide)."""
    monkeypatch.delenv(PROVIDER_ENV_VAR, raising=False)


class FakeClock:
    """Deterministic, manually-advanced perf_counter stand-in."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


class ScriptedProvider:
    """Provider returning scripted joules per sample on a fake clock."""

    name = "scripted"
    kind = "measured"

    def __init__(self, clock, joules_per_second: float = 10.0) -> None:
        self._clock = clock
        self.joules_per_second = joules_per_second
        self._last = clock()

    def reset(self) -> None:
        self._last = self._clock()

    def sample(self) -> IntervalSample:
        now = self._clock()
        sample = IntervalSample(
            self._last, now, self.joules_per_second * (now - self._last)
        )
        self._last = now
        return sample

    def provenance(self) -> dict:
        return {"provider": self.name, "kind": self.kind}


def make_rapl_tree(
    root,
    packages: dict[str, int],
    *,
    max_range: int = 262_143_328_850,
    subdomains: bool = True,
    dram: int | None = None,
    dram_max_range: int = 65_712_999_613,
):
    """Build a fake /sys/class/powercap hierarchy under ``root``.

    ``dram`` adds an ``intel-rapl:<n>:1`` subdomain named ``dram`` per
    package at that counter value (real DRAM planes carry a smaller
    ``max_energy_range_uj`` than the package, hence the separate knob).
    """
    root.mkdir(exist_ok=True)
    for index, (label, energy) in enumerate(packages.items()):
        domain = root / f"intel-rapl:{index}"
        domain.mkdir()
        (domain / "energy_uj").write_text(f"{energy}\n")
        (domain / "max_energy_range_uj").write_text(f"{max_range}\n")
        (domain / "name").write_text(f"{label}\n")
        if subdomains:
            sub = root / f"intel-rapl:{index}:0"
            sub.mkdir()
            (sub / "energy_uj").write_text(f"{energy // 2}\n")
            (sub / "max_energy_range_uj").write_text(f"{max_range}\n")
            (sub / "name").write_text("core\n")
        if dram is not None:
            sub = root / f"intel-rapl:{index}:1"
            sub.mkdir()
            (sub / "energy_uj").write_text(f"{dram}\n")
            (sub / "max_energy_range_uj").write_text(f"{dram_max_range}\n")
            (sub / "name").write_text("dram\n")
    return root


def write_proc_stat(path, busy_total: list[tuple[int, int]]):
    """Write a minimal /proc/stat with per-core (busy, total) jiffies."""
    lines = []
    agg_busy = sum(b for b, _ in busy_total)
    agg_total = sum(t for _, t in busy_total)
    lines.append(
        f"cpu {agg_busy} 0 0 {agg_total - agg_busy} 0 0 0 0 0 0"
    )
    for i, (busy, total) in enumerate(busy_total):
        lines.append(f"cpu{i} {busy} 0 0 {total - busy} 0 0 0 0 0 0")
    lines.append("intr 0")
    path.write_text("\n".join(lines) + "\n")
    return path


# ---------------------------------------------------------------------------
# RAPL provider
# ---------------------------------------------------------------------------
class TestRaplProvider:
    def test_discovers_only_package_domains(self, tmp_path):
        root = make_rapl_tree(tmp_path / "powercap", {"package-0": 1000})
        provider = RaplProvider(root, clock=FakeClock())
        assert [d.label for d in provider.domains] == ["package-0"]

    def test_watts_from_energy_uj_delta(self, tmp_path):
        clock = FakeClock()
        root = make_rapl_tree(tmp_path / "powercap", {"package-0": 1_000_000})
        provider = RaplProvider(root, clock=clock)
        (root / "intel-rapl:0" / "energy_uj").write_text("51000000\n")
        clock.advance(2.0)
        sample = provider.sample()
        assert sample.joules == pytest.approx(50.0)
        assert sample.watts == pytest.approx(25.0)

    def test_wraparound_handled(self, tmp_path):
        clock = FakeClock()
        max_range = 1_000_000
        root = make_rapl_tree(
            tmp_path / "powercap", {"package-0": 900_000}, max_range=max_range
        )
        provider = RaplProvider(root, clock=clock)
        # Counter wrapped: 900_000 -> 100_000 means +200_000 uJ drawn.
        (root / "intel-rapl:0" / "energy_uj").write_text("100000\n")
        clock.advance(1.0)
        sample = provider.sample()
        assert sample.joules == pytest.approx(0.2)

    def test_multiple_packages_sum(self, tmp_path):
        clock = FakeClock()
        root = make_rapl_tree(
            tmp_path / "powercap", {"package-0": 0, "package-1": 0}
        )
        provider = RaplProvider(root, clock=clock)
        (root / "intel-rapl:0" / "energy_uj").write_text("1000000\n")
        (root / "intel-rapl:1" / "energy_uj").write_text("3000000\n")
        clock.advance(1.0)
        assert provider.sample().joules == pytest.approx(4.0)

    def test_subdomains_never_double_count(self, tmp_path):
        clock = FakeClock()
        root = make_rapl_tree(
            tmp_path / "powercap", {"package-0": 0}, subdomains=True
        )
        provider = RaplProvider(root, clock=clock)
        (root / "intel-rapl:0" / "energy_uj").write_text("2000000\n")
        (root / "intel-rapl:0:0" / "energy_uj").write_text("1000000\n")
        clock.advance(1.0)
        assert provider.sample().joules == pytest.approx(2.0)

    def test_missing_root_unavailable(self, tmp_path):
        missing = tmp_path / "nope"
        assert not RaplProvider.available(missing)
        assert "no powercap sysfs" in RaplProvider.diagnostic(missing)
        with pytest.raises(RuntimeError, match="powercap"):
            RaplProvider(missing)

    def test_unreadable_counter_unavailable(self, tmp_path):
        root = make_rapl_tree(tmp_path / "powercap", {"package-0": 0})
        (root / "intel-rapl:0" / "energy_uj").write_text("garbage\n")
        assert not RaplProvider.available(root)
        assert "no readable" in RaplProvider.diagnostic(root)

    def test_provenance_names_domains(self, tmp_path):
        root = make_rapl_tree(tmp_path / "powercap", {"package-0": 0})
        provider = RaplProvider(root, clock=FakeClock())
        record = provider.provenance()
        assert record["provider"] == "rapl"
        assert record["kind"] == "measured"
        assert record["domains"] == ["package-0"]


# ---------------------------------------------------------------------------
# DRAM RAPL provider (explicit-request-only memory-controller plane)
# ---------------------------------------------------------------------------
class TestDramRaplProvider:
    def test_discovers_only_dram_subdomains(self, tmp_path):
        root = make_rapl_tree(
            tmp_path / "powercap", {"package-0": 1000}, dram=500
        )
        provider = DramRaplProvider(root, clock=FakeClock())
        assert [d.label for d in provider.domains] == ["intel-rapl:0/dram"]
        # Neither the package counter nor the core subdomain leaks in.
        assert all(d.path.name == "intel-rapl:0:1" for d in provider.domains)

    def test_watts_exclude_package_and_core(self, tmp_path):
        clock = FakeClock()
        root = make_rapl_tree(
            tmp_path / "powercap", {"package-0": 0}, dram=1_000_000
        )
        provider = DramRaplProvider(root, clock=clock)
        # Package and core counters race ahead; only dram should count.
        (root / "intel-rapl:0" / "energy_uj").write_text("90000000\n")
        (root / "intel-rapl:0:0" / "energy_uj").write_text("40000000\n")
        (root / "intel-rapl:0:1" / "energy_uj").write_text("5000000\n")
        clock.advance(2.0)
        sample = provider.sample()
        assert sample.joules == pytest.approx(4.0)
        assert sample.watts == pytest.approx(2.0)

    def test_wraparound_uses_dram_range(self, tmp_path):
        clock = FakeClock()
        root = make_rapl_tree(
            tmp_path / "powercap", {"package-0": 0},
            dram=900_000, dram_max_range=1_000_000,
        )
        provider = DramRaplProvider(root, clock=clock)
        # 900_000 -> 100_000 through the (smaller) dram range: +200_000 uJ.
        (root / "intel-rapl:0" / "energy_uj").write_text("7\n")
        (root / "intel-rapl:0:1" / "energy_uj").write_text("100000\n")
        clock.advance(1.0)
        assert provider.sample().joules == pytest.approx(0.2)

    def test_multi_socket_dram_planes_sum(self, tmp_path):
        clock = FakeClock()
        root = make_rapl_tree(
            tmp_path / "powercap", {"package-0": 0, "package-1": 0}, dram=0
        )
        provider = DramRaplProvider(root, clock=clock)
        (root / "intel-rapl:0:1" / "energy_uj").write_text("1000000\n")
        (root / "intel-rapl:1:1" / "energy_uj").write_text("3000000\n")
        clock.advance(1.0)
        assert provider.sample().joules == pytest.approx(4.0)

    def test_unavailable_without_dram_subdomain(self, tmp_path):
        root = make_rapl_tree(tmp_path / "powercap", {"package-0": 0})
        assert not DramRaplProvider.available(root)
        assert "dram subdomain" in DramRaplProvider.diagnostic(root)
        with pytest.raises(RuntimeError, match="dram subdomain"):
            DramRaplProvider(root)

    def test_forced_provider_via_argument_and_env(self, tmp_path, monkeypatch):
        root = make_rapl_tree(
            tmp_path / "powercap", {"package-0": 0}, dram=0
        )
        provider = detect_provider("dram", rapl_root=root)
        assert provider.name == "dram" and provider.kind == "measured"
        monkeypatch.setenv(PROVIDER_ENV_VAR, "dram")
        assert detect_provider(rapl_root=root).name == "dram"

    def test_never_auto_selected(self, tmp_path):
        # A tree with *only* dram planes readable: auto-detection must
        # skip rapl (no package domain) and fall through the ladder,
        # not silently substitute the component reading.
        root = make_rapl_tree(
            tmp_path / "powercap", {"package-0": 0},
            subdomains=False, dram=0,
        )
        (root / "intel-rapl:0" / "energy_uj").write_text("garbage\n")
        provider = detect_provider(
            rapl_root=root, stat_path=tmp_path / "missing"
        )
        assert provider.name == "model"

    def test_provenance_records_dram_plane(self, tmp_path):
        root = make_rapl_tree(
            tmp_path / "powercap", {"package-0": 0}, dram=0
        )
        record = DramRaplProvider(root, clock=FakeClock()).provenance()
        assert record["provider"] == "dram"
        assert record["kind"] == "measured"
        assert record["domains"] == ["intel-rapl:0/dram"]


# ---------------------------------------------------------------------------
# /proc/stat provider
# ---------------------------------------------------------------------------
class TestProcStatProvider:
    def test_utilization_from_jiffy_deltas(self, tmp_path):
        clock = FakeClock()
        stat = write_proc_stat(tmp_path / "stat", [(100, 1000), (200, 1000)])
        provider = ProcStatProvider(stat, clock=clock)
        # Core 0 runs 50/100 busy, core 1 runs 100/100 busy.
        write_proc_stat(tmp_path / "stat", [(150, 1100), (300, 1100)])
        clock.advance(1.0)
        assert provider.utilization() == pytest.approx(0.75)

    def test_watts_through_cpu_power_model(self, tmp_path):
        clock = FakeClock()
        stat = write_proc_stat(tmp_path / "stat", [(0, 1000)])
        provider = ProcStatProvider(stat, clock=clock)
        idle = provider.instance.idle_watts
        write_proc_stat(tmp_path / "stat", [(100, 1100)])  # 100% busy
        clock.advance(1.0)
        busy_sample = provider.sample()
        assert busy_sample.watts > idle
        write_proc_stat(tmp_path / "stat", [(100, 1200)])  # idle interval
        clock.advance(1.0)
        assert provider.sample().watts == pytest.approx(idle)

    def test_missing_stat_unavailable(self, tmp_path):
        missing = tmp_path / "stat"
        assert not ProcStatProvider.available(missing)
        assert "cannot read" in ProcStatProvider.diagnostic(missing)
        with pytest.raises(RuntimeError, match="cannot read"):
            ProcStatProvider(missing)

    def test_no_per_core_rows_unavailable(self, tmp_path):
        stat = tmp_path / "stat"
        stat.write_text("cpu 1 2 3 4 5 6 7 8 0 0\nintr 0\n")
        assert not ProcStatProvider.available(stat)
        assert "no per-core" in ProcStatProvider.diagnostic(stat)


# ---------------------------------------------------------------------------
# Model fallback provider
# ---------------------------------------------------------------------------
class TestModelProvider:
    def test_always_available(self):
        assert ModelProvider.available()

    def test_watts_floor_is_idle(self):
        clock = FakeClock()
        cpu = FakeClock()  # process entirely idle
        provider = ModelProvider(clock=clock, cpu_clock=cpu)
        clock.advance(1.0)
        sample = provider.sample()
        assert sample.watts == pytest.approx(provider.instance.idle_watts)

    def test_busy_process_draws_more(self):
        clock = FakeClock()
        cpu = FakeClock()
        provider = ModelProvider(clock=clock, cpu_clock=cpu)
        clock.advance(1.0)
        cpu.advance(1.0)  # one core fully busy
        busy = provider.sample().watts
        assert busy > provider.instance.idle_watts

    def test_local_instance_spec_calibration_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POWER_IDLE_WATTS", "25")
        monkeypatch.setenv("REPRO_POWER_TDP_WATTS", "80")
        spec = local_instance_spec(4)
        assert spec.idle_watts == 25.0
        assert spec.cpu.tdp_watts == 80.0
        assert spec.total_cores == 4


# ---------------------------------------------------------------------------
# Detection / fallback ladder
# ---------------------------------------------------------------------------
class TestDetection:
    def test_prefers_rapl_when_available(self, tmp_path):
        root = make_rapl_tree(tmp_path / "powercap", {"package-0": 0})
        stat = write_proc_stat(tmp_path / "stat", [(0, 100)])
        provider = detect_provider(rapl_root=root, stat_path=stat)
        assert provider.name == "rapl"

    def test_falls_back_to_procfs_without_rapl(self, tmp_path, monkeypatch):
        monkeypatch.delenv(PROVIDER_ENV_VAR, raising=False)
        stat = write_proc_stat(tmp_path / "stat", [(0, 100)])
        provider = detect_provider(
            rapl_root=tmp_path / "nope", stat_path=stat
        )
        assert provider.name == "procfs"

    def test_falls_back_to_model_without_error(self, tmp_path, monkeypatch):
        monkeypatch.delenv(PROVIDER_ENV_VAR, raising=False)
        provider = detect_provider(
            rapl_root=tmp_path / "nope", stat_path=tmp_path / "missing"
        )
        assert provider.name == "model"
        assert provider.kind == "modeled"

    def test_env_override_forces_model(self, tmp_path, monkeypatch):
        root = make_rapl_tree(tmp_path / "powercap", {"package-0": 0})
        monkeypatch.setenv(PROVIDER_ENV_VAR, "model")
        provider = detect_provider(rapl_root=root)
        assert provider.name == "model"

    def test_explicit_unavailable_request_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            detect_provider("rapl", rapl_root=tmp_path / "nope")

    def test_unknown_provider_rejected(self):
        with pytest.raises(ValueError, match="unknown power provider"):
            detect_provider("nvml")

    def test_diagnostics_cover_all_rungs(self, tmp_path):
        diag = provider_diagnostics(
            rapl_root=tmp_path / "nope", stat_path=tmp_path / "missing"
        )
        assert set(diag) == {"rapl", "dram", "procfs", "model"}
        assert diag["model"].startswith("available")


# ---------------------------------------------------------------------------
# Sampler
# ---------------------------------------------------------------------------
class TestTelemetrySampler:
    def test_background_loop_collects_samples(self):
        sampler = TelemetrySampler(
            ModelProvider(), period_s=0.01, min_run_seconds=0.0
        )
        sampler.start()
        import time as _time

        _time.sleep(0.1)
        samples = sampler.stop()
        assert len(samples) >= 3
        assert all(s.duration_s > 0 for s in samples)

    def test_total_joules_and_mean_watts(self):
        clock = FakeClock()
        sampler = TelemetrySampler(
            ScriptedProvider(clock, joules_per_second=10.0),
            clock=clock,
            min_run_seconds=0.0,
        )
        sampler.start()
        clock.advance(1.0)
        sampler.sample_now()
        clock.advance(1.0)
        sampler.stop()
        assert sampler.total_joules == pytest.approx(20.0)
        assert sampler.mean_watts == pytest.approx(10.0)

    def test_stop_flushes_final_partial_interval(self):
        clock = FakeClock()
        sampler = TelemetrySampler(
            ScriptedProvider(clock, joules_per_second=4.0),
            clock=clock,
            min_run_seconds=0.0,
        )
        sampler.start()
        clock.advance(0.25)  # shorter than any period: only the flush
        sampler.stop()
        assert sampler.total_joules == pytest.approx(1.0)

    def test_short_run_warns_once_with_duration(self):
        reset_under_sample_warnings()
        clock = FakeClock()

        def run_once():
            sampler = TelemetrySampler(
                ScriptedProvider(clock), clock=clock, min_run_seconds=10.0
            )
            sampler.start()
            clock.advance(1.5)
            sampler.stop()
            return sampler

        with pytest.warns(UnderSampledRunWarning, match="1.50 s"):
            sampler = run_once()
        assert sampler.under_sampled
        # Second short run: flagged, but no second warning.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", UnderSampledRunWarning)
            assert run_once().under_sampled

    def test_long_run_does_not_warn(self):
        reset_under_sample_warnings()
        clock = FakeClock()
        sampler = TelemetrySampler(
            ScriptedProvider(clock), clock=clock, min_run_seconds=10.0
        )
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", UnderSampledRunWarning)
            sampler.start()
            clock.advance(12.0)
            sampler.stop()
        assert not sampler.under_sampled

    def test_metrics_gauges_updated(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        sampler = TelemetrySampler(
            ScriptedProvider(clock, joules_per_second=8.0),
            clock=clock,
            metrics=metrics,
            min_run_seconds=0.0,
        )
        sampler.start()
        clock.advance(2.0)
        sampler.sample_now()
        assert metrics.gauge("watts").value == pytest.approx(8.0)
        assert metrics.gauge("energy_joules").value == pytest.approx(16.0)
        sampler.stop()

    def test_final_flush_updates_gauges_on_short_runs(self):
        """A run shorter than one period must still land in the gauges."""
        clock = FakeClock()
        metrics = MetricsRegistry()
        sampler = TelemetrySampler(
            ScriptedProvider(clock, joules_per_second=8.0),
            clock=clock,
            metrics=metrics,
            min_run_seconds=0.0,
        )
        sampler.start()
        clock.advance(0.25)  # no background tick: only the stop() flush
        sampler.stop()
        assert metrics.gauge("energy_joules").value == pytest.approx(2.0)
        assert metrics.gauge("watts").value == pytest.approx(8.0)

    def test_context_manager_and_restart(self):
        clock = FakeClock()
        sampler = TelemetrySampler(
            ScriptedProvider(clock), clock=clock, min_run_seconds=0.0
        )
        with sampler:
            clock.advance(1.0)
        first = sampler.total_joules
        assert first > 0
        with sampler:  # restart clears the previous series
            clock.advance(0.5)
        assert sampler.total_joules == pytest.approx(first / 2)

    def test_double_start_and_unstarted_stop_rejected(self):
        sampler = TelemetrySampler(ModelProvider(), min_run_seconds=0.0)
        with pytest.raises(RuntimeError, match="not started"):
            sampler.stop()
        sampler.start()
        with pytest.raises(RuntimeError, match="already started"):
            sampler.start()
        sampler.stop()

    def test_provenance_and_summary_fields(self):
        clock = FakeClock()
        sampler = TelemetrySampler(
            ScriptedProvider(clock, joules_per_second=10.0),
            clock=clock,
            period_s=0.5,
            min_run_seconds=0.0,
        )
        sampler.start()
        clock.advance(2.0)
        sampler.stop()
        record = sampler.provenance()
        assert record["provider"] == "scripted"
        assert record["kind"] == "measured"
        assert record["period_s"] == 0.5
        summary = sampler.summary(steps=10)
        assert summary["joules_per_step"] == pytest.approx(2.0)
        assert summary["ts_per_s"] == pytest.approx(5.0)
        assert summary["ts_per_s_per_watt"] == pytest.approx(0.5)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError, match="period_s"):
            TelemetrySampler(ModelProvider(), period_s=0.0)


# ---------------------------------------------------------------------------
# Attribution
# ---------------------------------------------------------------------------
class Span:
    def __init__(self, name, cat, start, end):
        self.name, self.cat = name, cat
        self.start, self.end = start, end


class TestAttribution:
    def test_fully_covered_phase_gets_all_energy(self):
        samples = [IntervalSample(0.0, 1.0, 10.0)]
        spans = [Span("Pair", "task", 0.0, 1.0)]
        result = attribute_energy(samples, spans)
        assert result.phases["Pair"].joules == pytest.approx(10.0)
        assert result.coverage == pytest.approx(1.0)
        assert UNTRACKED not in result.phases

    def test_proportional_split_between_phases(self):
        samples = [IntervalSample(0.0, 1.0, 10.0)]
        spans = [
            Span("Pair", "task", 0.0, 0.75),
            Span("Neigh", "task", 0.75, 1.0),
        ]
        result = attribute_energy(samples, spans)
        assert result.phases["Pair"].joules == pytest.approx(7.5)
        assert result.phases["Neigh"].joules == pytest.approx(2.5)

    def test_untracked_remainder_accounted(self):
        samples = [IntervalSample(0.0, 2.0, 20.0)]
        spans = [Span("Pair", "task", 0.0, 0.5)]
        result = attribute_energy(samples, spans)
        assert result.phases["Pair"].joules == pytest.approx(5.0)
        assert result.phases[UNTRACKED].joules == pytest.approx(15.0)
        assert result.coverage == pytest.approx(0.25)

    def test_span_clipped_to_sample_boundaries(self):
        samples = [IntervalSample(1.0, 2.0, 10.0)]
        spans = [Span("Pair", "task", 0.5, 1.5), Span("Pair", "task", 1.9, 2.4)]
        result = attribute_energy(samples, spans)
        # 0.5 s + 0.1 s of Pair inside the sampled second.
        assert result.phases["Pair"].joules == pytest.approx(6.0)

    def test_energy_conserved_across_samples(self):
        samples = [
            IntervalSample(0.0, 0.5, 3.0),
            IntervalSample(0.5, 1.0, 5.0),
        ]
        spans = [
            Span("Pair", "task", 0.1, 0.4),
            Span("Neigh", "task", 0.6, 0.9),
        ]
        result = attribute_energy(samples, spans)
        assert sum(p.joules for p in result.phases.values()) == pytest.approx(
            result.total_joules
        )
        assert result.total_joules == pytest.approx(8.0)

    def test_non_task_categories_ignored_by_default(self):
        samples = [IntervalSample(0.0, 1.0, 10.0)]
        spans = [
            Span("step", "step", 0.0, 1.0),
            Span("kernel.accumulate", "kernel", 0.0, 1.0),
            Span("Pair", "task", 0.0, 0.5),
        ]
        result = attribute_energy(samples, spans)
        assert set(result.phases) == {"Pair", UNTRACKED}

    def test_checkpoint_spans_attributed(self):
        samples = [IntervalSample(0.0, 1.0, 10.0)]
        spans = [Span("checkpoint.write", "checkpoint", 0.2, 0.7)]
        result = attribute_energy(samples, spans)
        assert result.phases["checkpoint.write"].joules == pytest.approx(5.0)

    def test_no_spans_everything_untracked(self):
        samples = [IntervalSample(0.0, 1.0, 7.0)]
        result = attribute_energy(samples, [])
        assert result.phases[UNTRACKED].joules == pytest.approx(7.0)
        assert result.coverage == 0.0

    def test_phase_watts_is_draw_while_busy(self):
        samples = [IntervalSample(0.0, 1.0, 10.0)]
        spans = [Span("Pair", "task", 0.0, 0.5)]
        result = attribute_energy(samples, spans)
        assert result.phases["Pair"].watts == pytest.approx(10.0)

    def test_render_and_json_roundtrip(self):
        samples = [IntervalSample(0.0, 1.0, 10.0)]
        spans = [Span("Pair", "task", 0.0, 0.6)]
        result = attribute_energy(samples, spans)
        text = render_energy_table(result, steps=10)
        assert "Pair" in text and "J/step" in text
        payload = json.loads(json.dumps(result.to_json()))
        assert payload["phases"]["Pair"]["joules"] == pytest.approx(6.0)
        assert payload["coverage"] == pytest.approx(0.6)


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------
class TestProvenance:
    def test_cgroup_v2_quota_parsed(self, tmp_path):
        v2 = tmp_path / "cpu.max"
        v2.write_text("200000 100000\n")
        assert cgroup_cpu_quota(v2_path=v2) == pytest.approx(2.0)

    def test_cgroup_v2_max_means_unlimited(self, tmp_path):
        v2 = tmp_path / "cpu.max"
        v2.write_text("max 100000\n")
        assert cgroup_cpu_quota(
            v2_path=v2, v1_quota_path=tmp_path / "q", v1_period_path=tmp_path / "p"
        ) is None

    def test_cgroup_v1_fallback(self, tmp_path):
        quota = tmp_path / "cpu.cfs_quota_us"
        period = tmp_path / "cpu.cfs_period_us"
        quota.write_text("50000\n")
        period.write_text("100000\n")
        assert cgroup_cpu_quota(
            v2_path=tmp_path / "absent",
            v1_quota_path=quota,
            v1_period_path=period,
        ) == pytest.approx(0.5)

    def test_cgroup_unknown_is_none(self, tmp_path):
        assert cgroup_cpu_quota(
            v2_path=tmp_path / "a",
            v1_quota_path=tmp_path / "b",
            v1_period_path=tmp_path / "c",
        ) is None

    def test_platform_provenance_block(self):
        record = platform_provenance()
        assert record["kernel_version"]
        assert "rapl_available" in record
        assert record["power_provider"]["provider"] in ("rapl", "procfs", "model")
        assert set(record["power_provider_diagnostics"]) == {
            "rapl", "dram", "procfs", "model",
        }
        json.dumps(record)  # must be JSON-safe for BENCH_*.json


# ---------------------------------------------------------------------------
# End to end: the power CLI against a tiny functional run
# ---------------------------------------------------------------------------
class TestPowerCli:
    def test_power_command_reports_and_exports(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "energy.json"
        code = main([
            "power", "lj", "--steps", "6", "--atoms", "128",
            "--warmup", "1", "--provider", "model",
            "--report-every", "3", "--json", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "Per-phase energy breakdown" in text
        assert "TS/s/W" in text
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-bench-report/2"
        assert report["kind"] == "power"
        assert report["energy"] == {"provider": "model", "kind": "modeled"}
        assert report["joules_per_step"] > 0
        assert report["ts_per_s_per_watt"] > 0
        assert report["sampling"]["provider"] == "model"
        assert report["sampling"]["under_sampled"] is True
        assert report["attribution"]["phases"]
        assert report["platform"]["kernel_version"]

    def test_power_command_unavailable_provider_exits_2(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        # Force rapl while pointing discovery at an empty sysfs root.
        monkeypatch.setattr(
            "repro.observability.telemetry.providers.RAPL_SYSFS_ROOT",
            str(tmp_path / "nope"),
        )
        code = main(["power", "lj", "--steps", "2", "--atoms", "64",
                     "--provider", "rapl"])
        assert code == 2
