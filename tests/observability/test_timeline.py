"""Per-rank timelines and their wiring into the simulated executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observability.timeline import RankTimeline
from repro.observability.tracer import Tracer
from repro.parallel.executor import simulate_cpu_run


class TestFromModel:
    def test_span_math_matches_the_model(self):
        compute = np.array([1.0, 3.0, 2.0])
        wait = np.array([2.0, 0.0, 1.0])  # barrier at the slowest rank
        timeline = RankTimeline.from_model(compute, wait, comm_seconds=0.5)
        assert timeline.n_ranks == 3
        assert timeline.seconds_per_rank("compute") == pytest.approx(compute)
        assert timeline.wait_seconds_per_rank() == pytest.approx(wait)
        assert timeline.imbalance_seconds() == pytest.approx(np.mean(wait))
        assert timeline.step_seconds() == pytest.approx(3.5)
        assert timeline.critical_rank() == 1

    def test_zero_wait_ranks_emit_no_wait_span(self):
        timeline = RankTimeline.from_model([1.0, 2.0], [1.0, 0.0])
        names = [(s.rank, s.name) for s in timeline.spans]
        assert (1, "mpi_wait") not in names
        assert (0, "mpi_wait") in names

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RankTimeline.from_model([1.0, 2.0], [0.0])


class TestExport:
    def test_export_replays_into_a_tracer_per_rank(self):
        timeline = RankTimeline.from_model([1.0, 2.0], [1.0, 0.0])
        tracer = Tracer()
        timeline.export(tracer)
        tids = {r.tid for r in tracer.records()}
        assert tids == {0, 1}
        assert tracer.totals_by_name(cat="compute")["compute"] == pytest.approx(3.0)

    def test_chrome_trace_has_one_thread_per_rank(self, tmp_path):
        timeline = RankTimeline.from_model([1.0, 2.0], [1.0, 0.0], comm_seconds=0.25)
        doc = timeline.to_chrome_trace()
        threads = [
            e for e in doc["traceEvents"] if e.get("name") == "thread_name"
        ]
        assert [t["args"]["name"] for t in threads] == ["rank 0", "rank 1"]
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in complete)
        path = timeline.write_chrome_trace(tmp_path / "ranks.json")
        assert path.exists()

    def test_render_draws_every_rank(self):
        timeline = RankTimeline.from_model([1.0, 2.0], [1.0, 0.0])
        text = timeline.render()
        assert "rank   0" in text and "rank   1" in text
        assert "#" in text and "." in text


class TestExecutorIntegration:
    def test_run_result_carries_a_timeline(self):
        result = simulate_cpu_run("lj", 32_000, 8)
        timeline = result.timeline
        assert timeline is not None
        assert timeline.n_ranks == 8
        assert timeline.seconds_per_rank("compute") == pytest.approx(
            result.per_rank_compute_seconds
        )

    def test_imbalance_fraction_comes_from_the_recorded_spans(self):
        result = simulate_cpu_run("rhodo", 128_000, 16)
        profiled_total = (
            result.step_seconds + result.mpi_function_seconds["MPI_Init"]
        )
        expected = result.timeline.imbalance_seconds() / profiled_total
        assert result.mpi_imbalance_fraction == pytest.approx(expected)
        assert 0.0 < result.mpi_imbalance_fraction < 1.0

    def test_single_rank_run_has_no_imbalance(self):
        result = simulate_cpu_run("lj", 32_000, 1)
        assert result.mpi_imbalance_fraction == 0.0
        assert result.timeline.n_ranks == 1

    def test_explicit_tracer_records_rank_spans(self):
        tracer = Tracer()
        result = simulate_cpu_run("lj", 32_000, 4, tracer=tracer)
        assert {r.tid for r in tracer.records()} == {0, 1, 2, 3}
        waits = tracer.totals_by_name(cat="mpi")
        assert waits.get("mpi_wait", 0.0) == pytest.approx(
            float(np.sum(result.timeline.wait_seconds_per_rank()))
        )

    def test_timeline_step_matches_modelled_step_seconds(self):
        result = simulate_cpu_run("eam", 64_000, 8)
        # slowest rank's compute + uniform comm == the model's step time
        assert result.timeline.step_seconds() == pytest.approx(
            result.step_seconds, rel=1e-9
        )
