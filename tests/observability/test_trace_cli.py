"""The ``python -m repro trace`` entry point and its acceptance bound."""

from __future__ import annotations

import json

from repro.__main__ import main
from repro.observability import (
    MetricsRegistry,
    Tracer,
    trace_timer_agreement,
)
from repro.suite import get_benchmark


def test_trace_command_writes_trace_and_metrics(tmp_path, capsys):
    out = tmp_path / "trace_out"
    code = main(
        [
            "trace",
            "lj",
            "--steps",
            "10",
            "--atoms",
            "256",
            "--warmup",
            "2",
            "--out",
            str(out),
        ]
    )
    assert code == 0

    doc = json.loads((out / "trace.json").read_text())
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert complete, "trace recorded no spans"
    for event in complete:
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
    # warmup steps were reset away: exactly the traced steps remain
    assert sum(1 for e in complete if e["name"] == "step") == 10

    lines = [
        json.loads(line)
        for line in (out / "metrics.jsonl").read_text().splitlines()
    ]
    assert lines[-1]["step"] == 10
    assert lines[-1]["metrics"]["md_steps_total"]["value"] == 12.0  # incl. warmup

    shown = capsys.readouterr().out
    assert "Task timing breakdown" in shown
    assert "trace/timer agreement" in shown


def test_rerunning_truncates_the_metrics_file(tmp_path, capsys):
    out = tmp_path / "trace_out"
    args = ["trace", "lj", "--steps", "4", "--atoms", "256",
            "--warmup", "0", "--snapshot-every", "2", "--out", str(out)]
    assert main(args) == 0
    assert main(args) == 0
    lines = (out / "metrics.jsonl").read_text().splitlines()
    assert len(lines) == 2  # one file per invocation, not an endless append


def test_span_totals_agree_with_task_breakdown_within_2_percent():
    """The PR's acceptance criterion, checked at the API level."""
    tracer = Tracer()
    sim = get_benchmark("lj").build_instrumented(
        256, tracer=tracer, metrics=MetricsRegistry()
    )
    sim.run(5)  # warmup (includes setup cost)
    tracer.reset()
    sim.run(50, reset_timers=True)
    deltas = trace_timer_agreement(sim.timers, tracer)
    assert max(deltas.values()) < 0.02, deltas
