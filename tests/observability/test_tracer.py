"""Span tracer: nesting, ring wraparound, export, disabled-path cost."""

from __future__ import annotations

import json
import time

import pytest

from repro.md.lattice import lj_melt_system
from repro.md.potentials.lj import LennardJonesCut
from repro.md.simulation import Simulation
from repro.observability.tracer import (
    NULL_TRACER,
    TRACE_ENV_VAR,
    NullTracer,
    Tracer,
    resolve_tracer,
)


def make_clock(times):
    """Deterministic clock yielding the given instants in order."""
    it = iter(times)
    return lambda: next(it)


class TestSpanNesting:
    def test_nested_spans_record_depth_and_durations(self):
        tracer = Tracer(clock=make_clock([0.0, 1.0, 2.0, 3.0]))
        tracer.begin("outer", "task")
        tracer.begin("inner", "kernel")
        tracer.end()  # inner: [1, 2]
        tracer.end()  # outer: [0, 3]
        inner, outer = tracer.records()
        assert (inner.name, inner.cat, inner.depth) == ("inner", "kernel", 1)
        assert (outer.name, outer.cat, outer.depth) == ("outer", "task", 0)
        assert inner.duration == pytest.approx(1.0)
        assert outer.duration == pytest.approx(3.0)

    def test_span_context_manager_matches_begin_end(self):
        tracer = Tracer(clock=make_clock([0.0, 0.5, 1.5, 2.0]))
        with tracer.span("a", "x"):
            with tracer.span("b", "y"):
                pass
        names = [r.name for r in tracer.records()]
        assert names == ["b", "a"]  # innermost closes (and records) first

    def test_explicit_timestamps_bypass_the_clock(self):
        tracer = Tracer(clock=make_clock([]))  # any clock use would raise
        tracer.begin("t", "task", ts=10.0)
        tracer.end(ts=12.5)
        (record,) = tracer.records()
        assert record.duration == pytest.approx(2.5)

    def test_end_without_begin_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            tracer.end()

    def test_collapsed_stacks_reconstruct_nesting(self):
        tracer = Tracer(clock=make_clock([0.0, 1.0, 2.0, 3.0, 4.0, 5.0]))
        with tracer.span("step"):
            with tracer.span("Pair"):
                pass
            with tracer.span("Neigh"):
                pass
        stacks = tracer.collapsed_stacks()
        assert set(stacks) == {"step", "step;Pair", "step;Neigh"}
        assert stacks["step;Pair"] == pytest.approx(1.0)


class TestRingBuffer:
    def test_wraparound_keeps_newest_and_counts_dropped(self):
        tracer = Tracer(capacity=4)
        for k in range(10):
            tracer.add_span(f"s{k}", "c", float(k), float(k) + 0.5)
        assert tracer.n_recorded == 4
        assert tracer.n_dropped == 6
        assert [r.name for r in tracer.records()] == ["s6", "s7", "s8", "s9"]

    def test_reset_clears_records_and_drop_count(self):
        tracer = Tracer(capacity=2)
        for k in range(5):
            tracer.add_span("s", "c", 0.0, 1.0)
        tracer.reset()
        assert tracer.n_recorded == 0
        assert tracer.n_dropped == 0
        assert tracer.records() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestChromeExport:
    def test_trace_event_schema(self, tmp_path):
        tracer = Tracer()
        tracer.begin("step", "step", ts=1.0)
        tracer.begin("Pair", "task", ts=1.25)
        tracer.end(ts=1.75)
        tracer.end(ts=2.0)
        path = tracer.write_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "process_name"
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["dur"] >= 0.0
        # Timestamps are microseconds relative to the earliest span.
        by_name = {e["name"]: e for e in complete}
        assert by_name["step"]["ts"] == pytest.approx(0.0)
        assert by_name["Pair"]["ts"] == pytest.approx(0.25e6)
        assert by_name["Pair"]["dur"] == pytest.approx(0.5e6)

    def test_tid_names_emit_thread_metadata(self):
        tracer = Tracer()
        tracer.add_span("compute", "compute", 0.0, 1.0, tid=3)
        doc = tracer.to_chrome_trace(tid_names={3: "rank 3"})
        threads = [e for e in doc["traceEvents"] if e.get("name") == "thread_name"]
        assert threads[0]["args"]["name"] == "rank 3"


class TestResolveTracer:
    def test_instances_pass_through(self):
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer
        assert resolve_tracer(NULL_TRACER) is NULL_TRACER

    def test_true_builds_a_live_tracer(self):
        assert isinstance(resolve_tracer(True), Tracer)

    def test_env_variable_enables(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        assert isinstance(resolve_tracer(None), Tracer)
        monkeypatch.setenv(TRACE_ENV_VAR, "0")
        assert resolve_tracer(None) is NULL_TRACER
        monkeypatch.delenv(TRACE_ENV_VAR)
        assert resolve_tracer(None) is NULL_TRACER


class TestNullTracer:
    def test_null_tracer_is_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.begin("x", "y")
        tracer.end()
        tracer.add_span("x", "y", 0.0, 1.0)
        with tracer.span("x"):
            pass
        tracer.reset()

    def test_disabled_instrumentation_cost_is_under_5_percent(self):
        """The acceptance bound: tracing off must be (nearly) free.

        Timing two full 500-step runs back to back is hopelessly noisy
        on shared hardware, so this measures the actual quantity: the
        run's wall clock versus the direct cost of the ~12 no-op tracer
        operations each instrumented step performs when disabled.
        """
        sim = Simulation(
            lj_melt_system(256, seed=7),
            [LennardJonesCut(cutoff=2.5)],
            dt=0.005,
            skin=0.3,
        )
        assert sim.tracer is NULL_TRACER
        start = time.perf_counter()
        sim.run(500)
        run_seconds = time.perf_counter() - start

        tracer = NULL_TRACER
        start = time.perf_counter()
        for _ in range(12 * 500):
            if tracer.enabled:
                tracer.begin("x", "task")
                tracer.end()
            with tracer.span("x", "cat"):
                pass
        null_seconds = time.perf_counter() - start
        assert null_seconds < 0.05 * run_seconds

    def test_span_returns_shared_singleton_no_allocation(self):
        """span() must not allocate per call — one shared inert object."""
        tracer = NullTracer()
        first = tracer.span("Pair", "task")
        for name in ("Neigh", "Comm", "Kspace"):
            assert tracer.span(name, "task") is first
        assert NULL_TRACER.span("x") is first

    def test_null_tracer_is_a_process_wide_singleton_default(self):
        """Separate simulations share NULL_TRACER — no per-sim state."""
        a = Simulation(
            lj_melt_system(108, seed=1), [LennardJonesCut(cutoff=2.5)],
            dt=0.005, skin=0.3,
        )
        b = Simulation(
            lj_melt_system(108, seed=2), [LennardJonesCut(cutoff=2.5)],
            dt=0.005, skin=0.3,
        )
        assert a.tracer is b.tracer is NULL_TRACER
        assert not hasattr(NULL_TRACER, "__dict__")  # __slots__: no state

    def test_null_tracer_survives_heavy_misuse_without_state(self):
        """Unbalanced begin/end on the null tracer must stay inert."""
        tracer = NullTracer()
        for _ in range(100):
            tracer.end()
        for _ in range(100):
            tracer.begin("x", "task")
        tracer.reset()
        assert tracer.enabled is False


class TestSimulationIntegration:
    def test_traced_run_records_step_task_and_kernel_spans(self):
        tracer = Tracer()
        sim = Simulation(
            lj_melt_system(256, seed=3),
            [LennardJonesCut(cutoff=2.5)],
            dt=0.005,
            skin=0.3,
            tracer=tracer,
        )
        sim.run(3)
        cats = {r.cat for r in tracer.records()}
        assert {"step", "task", "neigh", "kernel"} <= cats
        assert len(tracer.totals_by_name(cat="step")) == 1

    def test_task_span_totals_match_timer_seconds(self):
        """Spans reuse the timers' timestamps, so totals agree exactly."""
        tracer = Tracer()
        sim = Simulation(
            lj_melt_system(256, seed=3),
            [LennardJonesCut(cutoff=2.5)],
            dt=0.005,
            skin=0.3,
            tracer=tracer,
        )
        sim.run(5)
        totals = tracer.task_totals()
        for task, seconds in sim.timers.seconds.items():
            if task == "Other":  # derived, not a timed region
                continue
            assert totals.get(task, 0.0) == pytest.approx(seconds, abs=1e-12)

    def test_attach_and_detach_tracer_rewires_backend(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        sim = Simulation(
            lj_melt_system(256, seed=3),
            [LennardJonesCut(cutoff=2.5)],
            dt=0.005,
            skin=0.3,
        )
        plain = sim.backend
        tracer = Tracer()
        sim.attach_tracer(tracer)
        assert sim.backend.inner is plain
        assert sim.timers.tracer is tracer
        assert sim.neighbor.tracer is tracer
        sim.run(2)
        assert tracer.n_recorded > 0
        sim.attach_tracer(None)
        assert sim.backend is plain
        assert sim.tracer is NULL_TRACER
