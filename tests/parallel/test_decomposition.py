"""Tests for the spatial domain decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.decomposition import SubdomainGeometry, proc_grid


class TestProcGrid:
    @given(n=st.integers(1, 128))
    @settings(max_examples=50, deadline=None)
    def test_grid_product_equals_ranks(self, n):
        box = np.array([50.0, 50.0, 50.0])
        grid = proc_grid(n, box)
        assert int(np.prod(grid)) == n

    def test_cube_gets_balanced_grid(self):
        assert sorted(proc_grid(64, np.array([50.0, 50.0, 50.0]))) == [4, 4, 4]

    def test_eight_ranks_cube(self):
        assert sorted(proc_grid(8, np.array([50.0, 50.0, 50.0]))) == [2, 2, 2]

    def test_elongated_box_split_along_long_axis(self):
        grid = proc_grid(4, np.array([100.0, 10.0, 10.0]))
        assert grid == (4, 1, 1)

    def test_quasi_2d_never_splits_z(self):
        for n in (2, 4, 8, 16, 64):
            grid = proc_grid(n, np.array([100.0, 100.0, 16.0]), quasi_2d=True)
            assert grid[2] == 1
            assert int(np.prod(grid)) == n

    def test_invalid_ranks_rejected(self):
        with pytest.raises(ValueError):
            proc_grid(0, np.array([1.0, 1.0, 1.0]))

    def test_minimizes_surface_over_alternatives(self):
        """16 ranks on a cube: (4,2,2) beats (16,1,1)."""
        box = np.array([40.0, 40.0, 40.0])
        grid = proc_grid(16, box)
        assert sorted(grid) == [2, 2, 4]


class TestSubdomainGeometry:
    def _geometry(self, n_ranks, quasi_2d=False):
        box = np.array([67.2, 67.2, 67.2]) if not quasi_2d else np.array([176.0, 176.0, 16.0])
        return SubdomainGeometry.build(
            n_ranks, box, ghost_cutoff=2.8, number_density=0.8442, quasi_2d=quasi_2d
        )

    def test_local_atoms_partition_total(self):
        geo = self._geometry(8)
        total = 0.8442 * 67.2**3
        assert geo.local_atoms * 8 == pytest.approx(total)

    def test_serial_run_has_no_ghosts(self):
        geo = self._geometry(1)
        assert geo.ghost_atoms == 0.0
        assert geo.exchange_messages == 0

    def test_ghost_atoms_positive_when_split(self):
        geo = self._geometry(8)
        assert geo.ghost_atoms > 0

    def test_more_ranks_more_surface_per_rank(self):
        """Fixed N: ghost/local ratio grows with the rank count — the
        paper's explanation for small systems not scaling."""
        ratio_8 = self._geometry(8).ghost_atoms / self._geometry(8).local_atoms
        ratio_64 = self._geometry(64).ghost_atoms / self._geometry(64).local_atoms
        assert ratio_64 > ratio_8

    def test_exchange_messages_two_per_split_dim(self):
        assert self._geometry(8).exchange_messages == 6  # 2x2x2
        assert self._geometry(2).exchange_messages == 2

    def test_exchange_bytes_scale_with_payload(self):
        geo = self._geometry(8)
        assert geo.exchange_bytes(48.0) == pytest.approx(2 * geo.exchange_bytes(24.0))

    def test_quasi_2d_ghosts_only_in_plane(self):
        geo = self._geometry(4, quasi_2d=True)
        # z unsplit: the shell exists along x and y only.
        inner = geo.sub_lengths
        expected_shell = (
            (inner[0] + 5.6) * (inner[1] + 5.6) * inner[2] - np.prod(inner)
        ) * 0.8442
        assert geo.ghost_atoms == pytest.approx(expected_shell)
