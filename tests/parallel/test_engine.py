"""Tests for the shared-memory domain-decomposed parallel engine."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.parallel.engine import ParallelEngineError, ParallelForceExecutor
from repro.suite import get_benchmark

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Small per-benchmark sizes (chain needs a chain-length multiple).
SIZES = {"lj": 2048, "chain": 2000, "eam": 1372, "rhodo": 1000, "chute": 1800}


def _run_serial(name: str, n_atoms: int, steps: int):
    sim = get_benchmark(name).build(n_atoms)
    sim.setup()
    for _ in range(steps):
        sim.step()
    return sim


def _run_parallel(name: str, n_atoms: int, steps: int, workers: int, **kwargs):
    sim = get_benchmark(name).build(n_atoms)
    executor = ParallelForceExecutor(
        workers, quasi_2d=(name == "chute"), **kwargs
    )
    sim.force_executor = executor
    executor.bind(sim)
    try:
        sim.setup()
        for _ in range(steps):
            sim.step()
        return sim, {
            "steps_measured": executor.steps_measured,
            "builds_measured": executor.builds_measured,
            "timeline": executor.timeline(),
            "n_builds": sim.neighbor.stats.n_builds,
            "last_pairs": sim.neighbor.stats.last_pairs,
        }
    finally:
        executor.close()


class TestSerialParity:
    @pytest.mark.parametrize("name", sorted(SIZES))
    def test_forces_and_energy_match_serial(self, name):
        steps = 3
        serial = _run_serial(name, SIZES[name], steps)
        parallel, _ = _run_parallel(name, SIZES[name], steps, workers=2)
        force_delta = np.abs(serial.system.forces - parallel.system.forces).max()
        assert force_delta < 1e-10
        assert serial.potential_energy == pytest.approx(
            parallel.potential_energy, rel=1e-12, abs=1e-9
        )
        assert serial.virial == pytest.approx(
            parallel.virial, rel=1e-12, abs=1e-9
        )

    def test_interaction_count_and_rebuild_cadence_match_serial(self):
        steps = 6
        serial = _run_serial("lj", SIZES["lj"], steps)
        parallel, info = _run_parallel("lj", SIZES["lj"], steps, workers=2)
        assert info["n_builds"] == serial.neighbor.stats.n_builds
        assert info["last_pairs"] == serial.neighbor.stats.last_pairs


class TestDeterminism:
    def test_bitwise_identical_across_worker_counts(self):
        steps = 8
        states = {}
        for workers in (1, 2, 4):
            sim, _ = _run_parallel("lj", SIZES["lj"], steps, workers=workers)
            states[workers] = (
                sim.system.positions.copy(),
                sim.potential_energy,
            )
        ref_positions, ref_energy = states[1]
        for workers in (2, 4):
            positions, energy = states[workers]
            # bitwise: same directed rows summed in the same order on
            # every decomposition, so not even the last ulp may differ
            assert np.array_equal(ref_positions, positions)
            assert ref_energy == energy


class TestFailurePaths:
    def test_worker_crash_raises_instead_of_hanging(self):
        sim = get_benchmark("lj").build(SIZES["lj"])
        executor = ParallelForceExecutor(2, barrier_timeout=3.0)
        sim.force_executor = executor
        executor.bind(sim)
        try:
            sim.setup()
            sim.step()
            with pytest.raises(ParallelEngineError):
                executor.inject_crash(1)
        finally:
            executor.close()

    def test_crash_error_reports_worker_exit(self):
        sim = get_benchmark("lj").build(SIZES["lj"])
        executor = ParallelForceExecutor(2, barrier_timeout=3.0)
        sim.force_executor = executor
        executor.bind(sim)
        try:
            sim.setup()
            with pytest.raises(ParallelEngineError, match="exit"):
                executor.inject_crash(0)
        finally:
            executor.close()

    def test_close_is_idempotent(self):
        sim = get_benchmark("lj").build(SIZES["lj"])
        executor = ParallelForceExecutor(2)
        sim.force_executor = executor
        executor.bind(sim)
        sim.setup()
        executor.close()
        executor.close()


class TestObservability:
    def test_timings_and_timeline(self):
        _, info = _run_parallel("lj", SIZES["lj"], 4, workers=2)
        assert info["steps_measured"] >= 4
        assert info["builds_measured"] >= 1
        timeline = info["timeline"]
        assert timeline.n_ranks == 2
        assert timeline.render()

    def test_reset_timings(self):
        sim = get_benchmark("lj").build(SIZES["lj"])
        executor = ParallelForceExecutor(2)
        sim.force_executor = executor
        executor.bind(sim)
        try:
            sim.setup()
            sim.step()
            assert executor.steps_measured > 0
            executor.reset_timings()
            assert executor.steps_measured == 0
            assert executor.builds_measured == 0
            assert not executor.worker_pair_cpu_seconds.any()
            sim.step()
            assert executor.steps_measured == 1
        finally:
            executor.close()


class TestCli:
    def test_scale_subcommand_smoke(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "scale",
                "lj",
                "--workers",
                "2",
                "--steps",
                "3",
                "--atoms",
                "2048",
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "parity" in result.stdout
        assert "critical-path speedup" in result.stdout
