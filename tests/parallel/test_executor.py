"""Tests for the simulated CPU-instance executor."""

import numpy as np
import pytest

from repro.parallel.executor import BREAKDOWN_TASKS, simulate_cpu_run


class TestBasics:
    def test_result_fields_finite(self):
        r = simulate_cpu_run("lj", 256_000, 16)
        assert r.ts_per_s > 0
        assert r.step_seconds > 0
        assert r.power_watts > 0
        assert r.energy_efficiency == pytest.approx(r.ts_per_s / r.power_watts)

    def test_task_fractions_sum_to_one(self):
        r = simulate_cpu_run("rhodo", 256_000, 16)
        fractions = r.task_fractions()
        assert set(fractions) == set(BREAKDOWN_TASKS)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_deterministic(self):
        a = simulate_cpu_run("chain", 256_000, 32)
        b = simulate_cpu_run("chain", 256_000, 32)
        assert a.ts_per_s == b.ts_per_s
        assert a.mpi_function_seconds == b.mpi_function_seconds

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError):
            simulate_cpu_run("lj", 32_000, 65)

    def test_kspace_error_only_for_rhodo(self):
        with pytest.raises(ValueError):
            simulate_cpu_run("lj", 32_000, 8, kspace_error=1e-6)

    def test_serial_run_has_no_mpi(self):
        r = simulate_cpu_run("lj", 32_000, 1)
        assert r.mpi_time_fraction == 0.0
        assert r.mpi_imbalance_fraction == 0.0
        assert r.task_seconds["Comm"] == 0.0

    def test_ns_per_day_conversion(self):
        r = simulate_cpu_run("rhodo", 2_048_000, 64)
        assert r.ns_per_day(2.0) == pytest.approx(
            r.ts_per_s * 2.0 * 1e-6 * 86_400.0
        )


class TestScalingShapes:
    def test_throughput_improves_with_ranks(self):
        series = [
            simulate_cpu_run("lj", 2_048_000, n).ts_per_s for n in (1, 4, 16, 64)
        ]
        assert series == sorted(series)

    def test_parallel_efficiency_below_unity(self):
        r1 = simulate_cpu_run("eam", 2_048_000, 1)
        for n in (2, 8, 32, 64):
            rn = simulate_cpu_run("eam", 2_048_000, n)
            assert rn.ts_per_s / (r1.ts_per_s * n) <= 1.0 + 1e-9

    def test_throughput_falls_with_system_size(self):
        sizes = (32_000, 256_000, 864_000, 2_048_000)
        series = [simulate_cpu_run("chain", n, 64).ts_per_s for n in sizes]
        assert series == sorted(series, reverse=True)

    def test_mpi_overhead_falls_with_system_size(self):
        """Figure 4: overhead decreases as systems grow."""
        small = simulate_cpu_run("lj", 32_000, 64)
        big = simulate_cpu_run("lj", 2_048_000, 64)
        assert big.mpi_time_fraction < small.mpi_time_fraction

    def test_pair_share_tracks_neighbor_count(self):
        """Figure 3: LJ spends >75% serial time in Pair; Chain far less."""
        lj = simulate_cpu_run("lj", 2_048_000, 1).task_fractions()
        chain = simulate_cpu_run("chain", 2_048_000, 1).task_fractions()
        assert lj["Pair"] > 0.75
        assert chain["Pair"] < lj["Pair"]

    def test_kspace_comm_charged_to_kspace_task(self):
        r = simulate_cpu_run("rhodo", 2_048_000, 64, kspace_error=1e-7)
        base = simulate_cpu_run("rhodo", 2_048_000, 64, kspace_error=1e-4)
        assert r.task_fractions()["Kspace"] > base.task_fractions()["Kspace"]

    def test_memory_independent_of_ranks(self):
        a = simulate_cpu_run("lj", 256_000, 4)
        b = simulate_cpu_run("lj", 256_000, 64)
        assert a.memory_bytes == b.memory_bytes

    def test_power_grows_with_ranks(self):
        assert (
            simulate_cpu_run("lj", 256_000, 64).power_watts
            > simulate_cpu_run("lj", 256_000, 4).power_watts
        )

    def test_core_utilization_ordering(self):
        """Section 5.2: rhodo 83% > eam 63% > chain 56% > lj 48% > chute 24%."""
        utils = {
            b: simulate_cpu_run(b, 256_000, 64).core_utilization
            for b in ("rhodo", "eam", "chain", "lj", "chute")
        }
        assert utils["rhodo"] > utils["eam"] > utils["chain"] > utils["lj"] > utils["chute"]
