"""Tests for ownership assignment, ghost selection and subdomain lists."""

import numpy as np
import pytest

from repro.md.box import Box
from repro.md.neighbor import brute_force_pairs, subdomain_directed_pairs
from repro.parallel.decomposition import proc_grid
from repro.parallel.halo import (
    LocalIndex,
    assign_owners,
    domain_bounds,
    select_ghosts,
)


@pytest.fixture
def box() -> Box:
    return Box([8.0, 6.0, 5.0])


@pytest.fixture
def positions(box, rng) -> np.ndarray:
    return rng.uniform(0.0, 1.0, size=(300, 3)) * box.lengths


class TestAssignOwners:
    def test_total_partition(self, box, positions):
        grid = proc_grid(4, box.lengths)
        owners = assign_owners(positions, box.origin, box.lengths, grid)
        n_workers = int(np.prod(grid))
        assert owners.min() >= 0
        assert owners.max() < n_workers
        assert len(owners) == len(positions)

    def test_face_atom_gets_single_owner(self, box):
        """Atoms exactly on a subdomain face (or the upper box face)."""
        grid = (2, 2, 1)
        faces = np.array(
            [
                [4.0, 1.0, 1.0],  # internal x-face
                [1.0, 3.0, 1.0],  # internal y-face
                [8.0, 6.0, 5.0],  # upper box corner (wrap can land here)
                [0.0, 0.0, 0.0],
            ]
        )
        owners = assign_owners(faces, box.origin, box.lengths, grid)
        assert owners.min() >= 0
        assert owners.max() < 4

    def test_matches_domain_bounds(self, box, positions):
        grid = proc_grid(8, box.lengths)
        owners = assign_owners(positions, box.origin, box.lengths, grid)
        for worker in range(int(np.prod(grid))):
            lo, hi = domain_bounds(worker, box.origin, box.lengths, grid)
            mine = positions[owners == worker]
            assert np.all(mine >= lo - 1e-12)
            assert np.all(mine <= hi + 1e-12)


class TestSelectGhosts:
    def test_ghosts_land_in_halo_shell(self, box, positions):
        grid = (2, 1, 1)
        width = 1.2
        owners = assign_owners(positions, box.origin, box.lengths, grid)
        lo, hi = domain_bounds(0, box.origin, box.lengths, grid)
        gids, shifts = select_ghosts(
            positions, owners, 0, lo, hi, width, box.lengths, box.periodic
        )
        shifted = positions[gids] + shifts * box.lengths
        assert np.all(shifted >= lo - width - 1e-12)
        assert np.all(shifted <= hi + width + 1e-12)

    def test_unshifted_own_atoms_excluded(self, box, positions):
        grid = (2, 1, 1)
        owners = assign_owners(positions, box.origin, box.lengths, grid)
        lo, hi = domain_bounds(0, box.origin, box.lengths, grid)
        gids, shifts = select_ghosts(
            positions, owners, 0, lo, hi, 1.2, box.lengths, box.periodic
        )
        unshifted = ~shifts.any(axis=1)
        assert not np.any(owners[gids[unshifted]] == 0)

    def test_single_domain_halo_is_own_shifted_images(self, box, positions):
        """With one grid cell the domain neighbors itself periodically."""
        owners = np.zeros(len(positions), dtype=np.int64)
        lo, hi = domain_bounds(0, box.origin, box.lengths, (1, 1, 1))
        gids, shifts = select_ghosts(
            positions, owners, 0, lo, hi, 1.0, box.lengths, box.periodic
        )
        assert len(gids) > 0
        # every halo entry is a *shifted* image here
        assert np.all(shifts.any(axis=1))


class TestLocalIndex:
    def test_halo_covers_cutoff_sphere_of_owned_atoms(self, box, positions):
        """Every within-cutoff partner of an owned atom is local.

        The minimum-image displacement to the partner's ghost image must
        match the global minimum-image displacement — this is the
        invariant the per-domain pair search relies on.
        """
        cutoff = 1.2
        grid = proc_grid(4, box.lengths)
        n_workers = int(np.prod(grid))
        owners = assign_owners(positions, box.origin, box.lengths, grid)
        iu, ju = brute_force_pairs(positions, box, cutoff)
        for worker in range(n_workers):
            index = LocalIndex.build(
                positions,
                box.origin,
                box.lengths,
                box.periodic,
                grid,
                worker,
                cutoff,
            )
            local = index.local_positions(positions, box.lengths)
            images: dict[int, list[int]] = {}
            for k, g in enumerate(index.gids):
                images.setdefault(int(g), []).append(k)
            for a, b in zip(iu, ju):
                for i, j in ((a, b), (b, a)):
                    if owners[i] != worker:
                        continue
                    assert j in images, f"partner {j} missing on {worker}"
                    # atom i is owned, so its sole unshifted copy is the
                    # first n_owned entries; some image of j must sit at
                    # the global minimum-image displacement from it
                    (ki,) = [k for k in images[i] if k < index.n_owned]
                    d_global = box.minimum_image(positions[i] - positions[j])
                    deltas = local[ki] - local[images[j]]
                    assert np.any(
                        np.all(np.abs(deltas - d_global) < 1e-12, axis=1)
                    ), f"no image of {j} within cutoff of owned {i}"

    def test_owned_prefix_ordering(self, box, positions):
        grid = proc_grid(2, box.lengths)
        index = LocalIndex.build(
            positions, box.origin, box.lengths, box.periodic, grid, 0, 1.0
        )
        assert index.n_local == len(index.gids)
        assert not index.shifts[: index.n_owned].any()
        owned_gids = index.gids[: index.n_owned]
        assert np.all(np.diff(owned_gids) > 0)


class TestSubdomainDirectedPairs:
    def _cluster(self, rng, n=120):
        return rng.uniform(0.0, 4.0, size=(n, 3))

    def test_matches_brute_oracle_both_paths(self, rng):
        positions = self._cluster(rng)
        open_box = Box(
            [10.0, 10.0, 10.0], periodic=[False, False, False], origin=[-3.0] * 3
        )
        iu, ju = brute_force_pairs(positions, open_box, 1.0)
        expected = sorted(
            [(int(a), int(b)) for a, b in zip(iu, ju)]
            + [(int(b), int(a)) for a, b in zip(iu, ju)]
        )
        for limit in (0, 10**9):  # cell-list path, brute path
            di, dj = subdomain_directed_pairs(
                positions, 1.0, brute_force_max=limit
            )
            assert sorted(zip(di.tolist(), dj.tolist())) == expected

    def test_sorted_by_anchor_then_key(self, rng):
        positions = self._cluster(rng)
        key = rng.permutation(len(positions)).astype(np.int64)
        di, dj = subdomain_directed_pairs(positions, 1.0, sort_key=key)
        assert np.all(np.diff(di) >= 0)
        same_anchor = np.diff(di) == 0
        assert np.all(np.diff(key[dj])[same_anchor] > 0)

    def test_anchor_limit_is_prefix_of_unrestricted(self, rng):
        positions = self._cluster(rng)
        limit = 40
        di_all, dj_all = subdomain_directed_pairs(positions, 1.0)
        di_cut, dj_cut = subdomain_directed_pairs(
            positions, 1.0, anchor_limit=limit
        )
        keep = di_all < limit
        np.testing.assert_array_equal(di_cut, di_all[keep])
        np.testing.assert_array_equal(dj_cut, dj_all[keep])
        assert np.all(di_cut < limit)
