"""Tests for the MPI function-time accounting and imbalance model."""

import numpy as np
import pytest

from repro.parallel.decomposition import SubdomainGeometry
from repro.parallel.mpi_model import MPI_FUNCTIONS, MpiModel
from repro.perfmodel.workloads import get_workload


def _geometry(workload, n_atoms, n_ranks):
    return SubdomainGeometry.build(
        n_ranks,
        workload.box_lengths(n_atoms),
        ghost_cutoff=workload.cutoff + workload.skin,
        number_density=workload.number_density,
        quasi_2d=workload.quasi_2d,
    )


def _times(benchmark="lj", n_atoms=256_000, n_ranks=16, seed=0, grid_points=0.0):
    workload = get_workload(benchmark)
    model = MpiModel()
    geometry = _geometry(workload, n_atoms, n_ranks)
    compute = np.full(n_ranks, 1e-3) * model.rank_jitter(
        workload, n_ranks, n_atoms, seed
    )
    return model.step_times(
        workload, geometry, compute, kspace_grid_points=grid_points, seed=seed
    )


class TestStructure:
    def test_function_catalogue(self):
        assert MPI_FUNCTIONS == (
            "MPI_Allreduce",
            "MPI_Init",
            "MPI_Send",
            "MPI_Sendrecv",
            "MPI_Wait",
            "MPI_Waitany",
            "others",
        )

    def test_serial_run_has_no_mpi_time(self):
        times = _times(n_ranks=1)
        assert times.total == 0.0
        assert times.imbalance == 0.0

    def test_rank_count_mismatch_rejected(self):
        workload = get_workload("lj")
        model = MpiModel()
        geometry = _geometry(workload, 32_000, 8)
        with pytest.raises(ValueError):
            model.step_times(workload, geometry, np.ones(4))

    def test_per_function_entries_complete(self):
        times = _times()
        assert set(times.per_function) == set(MPI_FUNCTIONS)
        assert all(v >= 0 for v in times.per_function.values())

    def test_fractions_sum_to_one(self):
        times = _times()
        assert sum(times.function_fractions().values()) == pytest.approx(1.0)


class TestPaperFindings:
    def test_init_grows_with_rank_count(self):
        """Section 5.1: per-rank MPI_Init time rises with rank count."""
        model = MpiModel()
        busy = 1e-3
        assert (
            model.init_seconds_per_step(64, busy)
            > model.init_seconds_per_step(8, busy)
            > 0
        )
        assert model.init_seconds_per_step(1, busy) == 0.0

    def test_init_scales_with_runtime(self):
        """The paper verified Init time scales with total execution time
        (on top of a fixed per-run setup cost)."""
        workload = get_workload("lj")
        model = MpiModel()
        geometry = _geometry(workload, 256_000, 16)
        short = model.step_times(workload, geometry, np.full(16, 1e-3))
        long = model.step_times(workload, geometry, np.full(16, 1e-1))
        fixed = model.init_base_s / model.n_steps
        scaling_short = short.per_function["MPI_Init"] - fixed
        scaling_long = long.per_function["MPI_Init"] - fixed
        assert scaling_long == pytest.approx(100 * scaling_short)

    def test_init_dominates_small_fast_systems(self):
        """Figure 5: MPI_Init is the biggest MPI entry for 32k panels."""
        times = _times("lj", n_atoms=32_000, n_ranks=64)
        fractions = times.function_fractions()
        assert fractions["MPI_Init"] == max(fractions.values())

    def test_transfer_terms_grow_with_system_size(self):
        small = _times(n_atoms=32_000)
        big = _times(n_atoms=2_048_000)
        assert big.per_function["MPI_Sendrecv"] > small.per_function["MPI_Sendrecv"]
        assert big.per_function["MPI_Send"] > small.per_function["MPI_Send"]

    def test_imbalance_ordering_chain_vs_lj(self):
        """Figure 4 bottom: Chain/Chute wait far more than LJ/EAM."""
        chain = _times("chain", n_ranks=32, seed=1)
        lj = _times("lj", n_ranks=32, seed=1)
        assert chain.imbalance > lj.imbalance

    def test_kspace_adds_waitany_traffic(self):
        without = _times("rhodo", grid_points=0.0)
        with_grid = _times("rhodo", grid_points=3e6)
        assert with_grid.per_function["MPI_Waitany"] > without.per_function["MPI_Waitany"]
        assert with_grid.per_function["MPI_Send"] > without.per_function["MPI_Send"]

    def test_newton_off_skips_reverse_exchange(self):
        """Chute sends no force payload back (no Newton sharing)."""
        workload = get_workload("chute")
        model = MpiModel()
        geometry = _geometry(workload, 256_000, 16)
        times = model.step_times(workload, geometry, np.full(16, 1e-3))
        # Send carries only reverse-comm + fft bytes: none for chute.
        assert times.per_function["MPI_Send"] < times.per_function["MPI_Sendrecv"]


class TestDeterminism:
    def test_jitter_deterministic_across_calls(self):
        workload = get_workload("chain")
        model = MpiModel()
        a = model.rank_jitter(workload, 32, 256_000, seed=5)
        b = model.rank_jitter(workload, 32, 256_000, seed=5)
        assert np.array_equal(a, b)

    def test_jitter_varies_with_seed(self):
        workload = get_workload("chain")
        model = MpiModel()
        a = model.rank_jitter(workload, 32, 256_000, seed=5)
        b = model.rank_jitter(workload, 32, 256_000, seed=6)
        assert not np.array_equal(a, b)

    def test_jitter_positive(self):
        workload = get_workload("chute")
        jitter = MpiModel().rank_jitter(workload, 64, 32_000, seed=0)
        assert np.all(jitter >= 0.5)

    def test_serial_jitter_is_unity(self):
        workload = get_workload("lj")
        assert MpiModel().rank_jitter(workload, 1, 32_000, 0).tolist() == [1.0]
