"""Tests for the multi-node scale-out estimator (Section 4.1 contrast)."""

import pytest

from repro.parallel.multinode import (
    NetworkModel,
    _cross_node_fraction,
    simulate_multinode_run,
)


class TestGeometry:
    def test_single_node_has_no_cross_traffic(self):
        r = simulate_multinode_run("lj", 2_048_000, 1)
        assert r.cross_node_fraction == 0.0
        assert r.total_ranks == 64

    def test_cross_fraction_from_block_side(self):
        assert _cross_node_fraction(64) == pytest.approx(0.25)
        assert _cross_node_fraction(8) == pytest.approx(0.5)
        assert _cross_node_fraction(1) == 1.0

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            simulate_multinode_run("lj", 32_000, 0)

    def test_custom_ranks_per_node(self):
        r = simulate_multinode_run("lj", 2_048_000, 2, ranks_per_node=32)
        assert r.total_ranks == 64


class TestPaperContrast:
    def test_lj_64_nodes_efficiency_near_33pct(self):
        """Section 4.1's quoted figure: ~33% parallel efficiency for LJ
        strong-scaled to 64 nodes."""
        base = simulate_multinode_run("lj", 2_048_000, 1)
        wide = simulate_multinode_run("lj", 2_048_000, 64)
        eff = wide.ts_per_s / (base.ts_per_s * 64)
        assert eff == pytest.approx(0.33, abs=0.08)

    def test_efficiency_decays_with_node_count(self):
        base = simulate_multinode_run("lj", 2_048_000, 1)
        effs = []
        for n in (2, 8, 16, 64):
            r = simulate_multinode_run("lj", 2_048_000, n)
            effs.append(r.ts_per_s / (base.ts_per_s * n))
        assert effs == sorted(effs, reverse=True)

    def test_scale_out_still_gains_absolute_throughput(self):
        base = simulate_multinode_run("eam", 2_048_000, 1)
        wide = simulate_multinode_run("eam", 2_048_000, 16)
        assert wide.ts_per_s > base.ts_per_s

    def test_rhodo_kspace_pays_network_all_to_all(self):
        base = simulate_multinode_run("rhodo", 2_048_000, 8)
        tight = simulate_multinode_run("rhodo", 2_048_000, 8, kspace_error=1e-7)
        assert tight.ts_per_s < 0.5 * base.ts_per_s

    def test_faster_network_helps(self):
        slow = simulate_multinode_run("lj", 2_048_000, 16)
        fast = simulate_multinode_run(
            "lj",
            2_048_000,
            16,
            network=NetworkModel(bandwidth_b_s=1e9),
        )
        assert fast.ts_per_s > slow.ts_per_s

    def test_single_node_matches_intra_node_model_scale(self):
        """1-node multinode result is in the same regime as the
        single-node executor (same compute, comm modelled similarly)."""
        from repro.parallel import simulate_cpu_run

        multi = simulate_multinode_run("lj", 2_048_000, 1)
        single = simulate_cpu_run("lj", 2_048_000, 64)
        assert multi.ts_per_s == pytest.approx(single.ts_per_s, rel=0.15)
