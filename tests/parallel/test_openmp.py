"""Tests for the hybrid MPI x OpenMP model (Section 2.2's aside)."""

import pytest

from repro.parallel.openmp import OpenMpModel, best_hybrid_split, simulate_hybrid_run


class TestOpenMpModel:
    def test_amdahl_speedup_bounded(self):
        omp = OpenMpModel(parallel_fraction=0.9)
        assert omp.thread_speedup(1, 0.9) == pytest.approx(1.0)
        assert omp.thread_speedup(1000, 0.9) < 10.0  # Amdahl ceiling

    def test_speedup_monotone_in_threads(self):
        omp = OpenMpModel()
        s = [omp.thread_speedup(n, 0.93) for n in (1, 2, 4, 8)]
        assert s == sorted(s)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            OpenMpModel().thread_speedup(0, 0.9)


class TestHybridRuns:
    def test_one_thread_is_pure_mpi(self):
        from repro.parallel import simulate_cpu_run

        hybrid = simulate_hybrid_run("lj", 256_000, 16, 1)
        pure = simulate_cpu_run("lj", 256_000, 16)
        assert hybrid.ts_per_s == pure.ts_per_s

    def test_threads_do_speed_up_a_fixed_rank_count(self):
        base = simulate_hybrid_run("lj", 256_000, 8, 1)
        threaded = simulate_hybrid_run("lj", 256_000, 8, 4)
        assert threaded.ts_per_s > base.ts_per_s

    def test_core_budget_enforced(self):
        with pytest.raises(ValueError):
            simulate_hybrid_run("lj", 256_000, 32, 4)  # 128 > 64 cores

    def test_threading_helps_threaded_tasks_only(self):
        base = simulate_hybrid_run("rhodo", 256_000, 8, 1)
        threaded = simulate_hybrid_run("rhodo", 256_000, 8, 4)
        assert threaded.task_seconds["Pair"] < base.task_seconds["Pair"]
        # Rank-level FFTs do not benefit from threads in this build.
        assert threaded.task_seconds["Kspace"] == pytest.approx(
            base.task_seconds["Kspace"], rel=1e-6
        )


class TestPaperConclusion:
    @pytest.mark.parametrize("bench_name", ["lj", "chain", "eam", "chute", "rhodo"])
    def test_pure_mpi_wins_every_benchmark(self, bench_name):
        """Section 2.2: OpenMP or any hybrid was less performing than
        pure MPI in all cases."""
        ranks, threads, _ = best_hybrid_split(bench_name, 256_000, total_cores=16)
        assert threads == 1
        assert ranks == 16

    def test_pure_mpi_wins_at_full_node(self):
        ranks, threads, ts = best_hybrid_split("lj", 2_048_000, total_cores=64)
        assert (ranks, threads) == (64, 1)
        hybrid = simulate_hybrid_run("lj", 2_048_000, 8, 8)
        assert ts > hybrid.ts_per_s
