"""Tests for the CPU compute-cost laws."""

import numpy as np
import pytest

from repro.perfmodel.costs import (
    CpuCostCoefficients,
    CpuCostModel,
    kspace_grid,
)
from repro.perfmodel.precision import Precision, precision_pair_factor
from repro.perfmodel.workloads import get_workload


@pytest.fixture
def model():
    return CpuCostModel()


class TestComplexityLaws:
    def test_pair_cost_linear_in_atoms(self, model):
        w = get_workload("lj")
        t1 = model.compute_times(w, 10_000, 1).pair
        t2 = model.compute_times(w, 20_000, 1).pair
        assert t2 == pytest.approx(2 * t1)

    def test_pair_cost_tracks_neighbor_count(self, model):
        """The paper's core observation: Pair share follows
        neighbors/atom, not the specific force field."""
        lj = model.compute_times(get_workload("lj"), 10_000, 1)
        chain = model.compute_times(get_workload("chain"), 10_000, 1)
        assert lj.pair > chain.pair  # 55 vs 5 neighbors

    def test_newton_off_doubles_pair_work(self, model):
        chute = get_workload("chute")
        t = model.compute_times(chute, 10_000, 1)
        # 7 neighbors, no Newton halving.
        expected = (
            10_000
            * 7.0
            * chute.pair_cost_factor
            * model.coefficients.pair_per_interaction
            * precision_pair_factor("chute", Precision.MIXED)
        )
        assert t.pair == pytest.approx(expected)

    def test_bond_cost_only_for_bonded_benchmarks(self, model):
        assert model.compute_times(get_workload("lj"), 10_000, 1).bond == 0.0
        assert model.compute_times(get_workload("chain"), 10_000, 1).bond > 0.0

    def test_kspace_zero_without_solver(self, model):
        assert model.compute_times(get_workload("lj"), 10_000, 1).kspace == 0.0

    def test_kspace_grows_with_tighter_threshold(self, model):
        w = get_workload("rhodo")
        loose = model.compute_times(w, 32_000, 1, kspace_error=1e-4)
        tight = model.compute_times(w, 32_000, 1, kspace_error=1e-6)
        assert tight.kspace > loose.kspace
        assert tight.kspace_fft > loose.kspace_fft

    def test_fft_scales_sublinearly_with_ranks(self, model):
        """Section 7: the 3-D FFT's global communication hurts scaling."""
        w = get_workload("rhodo")
        serial = model.compute_times(w, 64_000, 1, n_atoms_total=64_000)
        parallel = model.compute_times(
            w, 1_000, 64, n_atoms_total=64_000
        )
        ideal = serial.kspace_fft / 64
        assert parallel.kspace_fft > ideal

    def test_total_sums_components(self, model):
        t = model.compute_times(get_workload("rhodo"), 10_000, 4, n_atoms_total=40_000)
        parts = t.pair + t.neigh + t.bond + t.kspace + t.modify + t.output + t.other
        assert t.total == pytest.approx(parts)

    def test_invalid_local_count(self, model):
        with pytest.raises(ValueError):
            model.compute_times(get_workload("lj"), 0, 1)


class TestPrecision:
    def test_double_slower_than_single(self):
        single = CpuCostModel(precision="single")
        double = CpuCostModel(precision="double")
        w = get_workload("lj")
        assert double.compute_times(w, 10_000, 1).pair > single.compute_times(
            w, 10_000, 1
        ).pair

    def test_only_pair_task_affected(self):
        """Section 8: the switch changes the pairwise computation only."""
        single = CpuCostModel(precision="single")
        double = CpuCostModel(precision="double")
        w = get_workload("lj")
        ts, td = single.compute_times(w, 10_000, 1), double.compute_times(w, 10_000, 1)
        assert td.neigh == pytest.approx(ts.neigh)
        assert td.modify == pytest.approx(ts.modify)
        assert td.other == pytest.approx(ts.other)

    def test_mixed_close_to_single(self):
        assert precision_pair_factor("lj", "mixed") < 1.1

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            precision_pair_factor("namd", "double")


class TestCoefficients:
    def test_slowed_scales_everything(self):
        base = CpuCostCoefficients()
        slow = base.slowed(1.45)
        model_fast = CpuCostModel(base)
        model_slow = CpuCostModel(slow)
        w = get_workload("lj")
        tf = model_fast.compute_times(w, 10_000, 1)
        ts = model_slow.compute_times(w, 10_000, 1)
        assert ts.pair == pytest.approx(1.45 * tf.pair)
        assert ts.total == pytest.approx(1.45 * tf.total)


class TestKspaceGrid:
    def test_rejects_non_kspace_workload(self):
        with pytest.raises(ValueError):
            kspace_grid(get_workload("lj"), 32_000, 1e-4)

    def test_grid_monotone_in_threshold(self):
        w = get_workload("rhodo")
        grids = [
            np.prod(kspace_grid(w, 2_048_000, acc)[1])
            for acc in (1e-4, 1e-5, 1e-6, 1e-7)
        ]
        assert grids == sorted(grids)
        assert grids[-1] > 20 * grids[0]  # the Section 7 explosion

    def test_memoization_returns_same_object(self):
        w = get_workload("rhodo")
        a = kspace_grid(w, 32_000, 1e-4)
        b = kspace_grid(w, 32_000, 1e-4)
        assert a == b
