"""Calibration validation: every anchor number the paper quotes.

These are the "absolute" checkpoints of the reproduction — the
performance model must land within tolerance of each figure the paper
states in its text (shapes are asserted by the figure tests; here it is
the quoted values themselves).
"""

import pytest

from repro.gpu import simulate_gpu_run
from repro.parallel import simulate_cpu_run
from repro.perfmodel.calibration import PAPER_ANCHORS as A

TOL = 0.20  # 20% on absolute throughput anchors


def eff(p_n, p_1, n):
    return p_n / (p_1 * n)


class TestCpuAnchors:
    def test_rhodo_2048k_64r_throughput(self):
        r = simulate_cpu_run("rhodo", 2_048_000, 64)
        assert r.ts_per_s == pytest.approx(A.rhodo_cpu_2048k_64r_ts, rel=TOL)

    def test_rhodo_2048k_64r_parallel_efficiency(self):
        r1 = simulate_cpu_run("rhodo", 2_048_000, 1)
        r64 = simulate_cpu_run("rhodo", 2_048_000, 64)
        measured = eff(r64.ts_per_s, r1.ts_per_s, 64)
        assert measured == pytest.approx(A.rhodo_cpu_2048k_64r_eff, abs=0.08)

    def test_rhodo_error_threshold_slowdown(self):
        base = simulate_cpu_run("rhodo", 2_048_000, 64)
        tight = simulate_cpu_run("rhodo", 2_048_000, 64, kspace_error=1e-7)
        assert tight.ts_per_s == pytest.approx(A.rhodo_cpu_2048k_64r_ts_e7, rel=TOL)
        paper_ratio = A.rhodo_cpu_2048k_64r_ts / A.rhodo_cpu_2048k_64r_ts_e7
        assert base.ts_per_s / tight.ts_per_s == pytest.approx(paper_ratio, rel=0.25)

    def test_rhodo_e7_parallel_efficiency_drops(self):
        r1 = simulate_cpu_run("rhodo", 2_048_000, 1, kspace_error=1e-7)
        r64 = simulate_cpu_run("rhodo", 2_048_000, 64, kspace_error=1e-7)
        measured = eff(r64.ts_per_s, r1.ts_per_s, 64)
        assert measured == pytest.approx(A.rhodo_cpu_2048k_64r_eff_e7, abs=0.10)
        assert measured < A.rhodo_cpu_2048k_64r_eff

    def test_chute_small_system_peak(self):
        best = max(
            simulate_cpu_run("chute", 32_000, n).ts_per_s for n in (16, 32, 64)
        )
        assert best == pytest.approx(A.chute_cpu_32k_best_ts, rel=0.25)

    def test_lj_precision_pair(self):
        single = simulate_cpu_run("lj", 2_048_000, 64, precision="single")
        double = simulate_cpu_run("lj", 2_048_000, 64, precision="double")
        assert single.ts_per_s == pytest.approx(A.lj_cpu_2048k_64r_ts_single, rel=TOL)
        assert double.ts_per_s == pytest.approx(A.lj_cpu_2048k_64r_ts_double, rel=TOL)
        paper_drop = A.lj_cpu_2048k_64r_ts_double / A.lj_cpu_2048k_64r_ts_single
        assert double.ts_per_s / single.ts_per_s == pytest.approx(paper_drop, abs=0.05)

    def test_rhodo_precision_pair(self):
        single = simulate_cpu_run("rhodo", 2_048_000, 64, precision="single")
        double = simulate_cpu_run("rhodo", 2_048_000, 64, precision="double")
        assert single.ts_per_s == pytest.approx(A.rhodo_cpu_2048k_64r_ts_single, rel=TOL)
        assert double.ts_per_s == pytest.approx(A.rhodo_cpu_2048k_64r_ts_double, rel=TOL)

    def test_headline_cpu_ns_per_day(self):
        r = simulate_cpu_run("rhodo", 2_048_000, 64)
        assert r.ns_per_day(2.0) == pytest.approx(A.rhodo_cpu_ns_per_day, rel=0.2)

    def test_memory_headline(self):
        r = simulate_cpu_run("rhodo", 2_048_000, 64)
        assert r.memory_bytes / 1e9 == pytest.approx(A.max_memory_gb, rel=0.25)


class TestGpuAnchors:
    def test_rhodo_2048k_8g_throughput(self):
        r = simulate_gpu_run("rhodo", 2_048_000, 8)
        assert r.ts_per_s == pytest.approx(A.rhodo_gpu_2048k_8g_ts, rel=TOL)

    def test_rhodo_gpu_error_threshold_collapse(self):
        tight = simulate_gpu_run("rhodo", 2_048_000, 8, kspace_error=1e-7)
        assert tight.ts_per_s == pytest.approx(A.rhodo_gpu_2048k_8g_ts_e7, rel=0.35)
        base = simulate_gpu_run("rhodo", 2_048_000, 8)
        # The paper's ~35x collapse (vs ~3x on CPU).
        assert base.ts_per_s / tight.ts_per_s > 15.0

    def test_lj_gpu_precision(self):
        single = simulate_gpu_run("lj", 2_048_000, 8, precision="single")
        double = simulate_gpu_run("lj", 2_048_000, 8, precision="double")
        assert single.ts_per_s == pytest.approx(A.lj_gpu_2048k_8g_ts_single, rel=TOL)
        assert double.ts_per_s == pytest.approx(A.lj_gpu_2048k_8g_ts_double, rel=TOL)

    def test_rhodo_gpu_precision_barely_moves(self):
        single = simulate_gpu_run("rhodo", 2_048_000, 8, precision="single")
        double = simulate_gpu_run("rhodo", 2_048_000, 8, precision="double")
        assert single.ts_per_s == pytest.approx(A.rhodo_gpu_2048k_8g_ts_single, rel=TOL)
        # < 10% penalty vs the ~28% LJ sees.
        assert double.ts_per_s / single.ts_per_s > 0.90

    def test_headline_gpu_ns_per_day(self):
        r = simulate_gpu_run("rhodo", 2_048_000, 8)
        assert r.ns_per_day(2.0) == pytest.approx(A.rhodo_gpu_ns_per_day, rel=0.2)

    def test_gpu_utilization_2m_headline(self):
        r = simulate_gpu_run("rhodo", 2_048_000, 8)
        assert r.gpu_utilization == pytest.approx(A.gpu_utilization_2m, abs=0.12)

    def test_gpu_parallel_efficiency_floor(self):
        """Some benchmark drops below ~30% efficiency (paper: 23.28%)."""
        floor = 1.0
        for bench in ("chain", "lj", "eam", "rhodo"):
            r1 = simulate_gpu_run(bench, 2_048_000, 1)
            r8 = simulate_gpu_run(bench, 2_048_000, 8)
            floor = min(floor, eff(r8.ts_per_s, r1.ts_per_s, 8))
        assert floor < 0.35

    def test_gpu_scaling_worse_than_cpu(self):
        """Section 6.2: multi-GPU efficiency << CPU MPI efficiency."""
        for bench in ("lj", "rhodo", "chain", "eam"):
            c1 = simulate_cpu_run(bench, 2_048_000, 1)
            c64 = simulate_cpu_run(bench, 2_048_000, 64)
            g1 = simulate_gpu_run(bench, 2_048_000, 1)
            g8 = simulate_gpu_run(bench, 2_048_000, 8)
            assert eff(g8.ts_per_s, g1.ts_per_s, 8) < eff(
                c64.ts_per_s, c1.ts_per_s, 64
            )
