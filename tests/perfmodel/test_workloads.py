"""Tests for the workload parameterization."""

import numpy as np
import pytest

from repro.perfmodel.workloads import (
    GPU_COUNTS,
    RANK_COUNTS,
    SIZES_K,
    get_workload,
    workloads,
)


class TestCampaignConstants:
    def test_paper_sizes(self):
        assert SIZES_K == (32, 256, 864, 2048)

    def test_paper_rank_ladder(self):
        assert RANK_COUNTS == (1, 2, 4, 8, 16, 32, 64)

    def test_paper_gpu_ladder(self):
        assert GPU_COUNTS == (1, 2, 4, 6, 8)


class TestLookup:
    def test_all_benchmarks_present(self):
        assert set(workloads) == {"lj", "chain", "eam", "chute", "rhodo"}

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_workload("gromacs")


class TestGeometry:
    def test_cubic_box_density(self):
        w = get_workload("lj")
        lengths = w.box_lengths(32_000)
        assert np.prod(lengths) * w.number_density == pytest.approx(32_000)

    def test_chute_slab_geometry(self):
        w = get_workload("chute")
        lengths = w.box_lengths(32_000)
        assert lengths[2] == pytest.approx(w.slab_height)
        assert lengths[0] == pytest.approx(lengths[1])
        assert lengths[0] > lengths[2]  # wide, thin bed

    def test_invalid_atom_count(self):
        with pytest.raises(ValueError):
            get_workload("lj").box_lengths(0)

    def test_eam_density_is_fcc_copper(self):
        w = get_workload("eam")
        assert w.number_density == pytest.approx(4.0 / 3.615**3)


class TestDerivedQuantities:
    def test_list_neighbors_include_skin_shell(self):
        w = get_workload("lj")
        assert w.list_neighbors_per_atom == pytest.approx(55 * (2.8 / 2.5) ** 3)

    def test_newton_halves_pair_work(self):
        lj = get_workload("lj")
        chute = get_workload("chute")
        assert lj.pair_interactions_per_atom() == pytest.approx(55 / 2)
        assert chute.pair_interactions_per_atom() == pytest.approx(7.0)

    def test_memory_anchor_rhodo_2048k(self):
        """Section 4.1: the biggest experiment needs ~2.9 GB."""
        gb = get_workload("rhodo").memory_bytes(2_048_000) / 1e9
        assert 2.0 < gb < 3.5

    def test_memory_scales_linearly(self):
        w = get_workload("lj")
        assert w.memory_bytes(64_000) == pytest.approx(2 * w.memory_bytes(32_000))

    def test_imbalance_ordering_matches_paper(self):
        """Figure 4: Chain and Chute are far more imbalanced than EAM/LJ."""
        amp = {name: w.imbalance_amplitude for name, w in workloads.items()}
        assert amp["chute"] > amp["lj"]
        assert amp["chain"] > amp["lj"]
        assert amp["eam"] <= amp["lj"]

    def test_core_utilization_matches_section52(self):
        util = {name: w.core_utilization for name, w in workloads.items()}
        assert util == {
            "lj": 0.48,
            "chain": 0.56,
            "eam": 0.63,
            "chute": 0.24,
            "rhodo": 0.83,
        }

    def test_only_rhodo_has_kspace(self):
        assert get_workload("rhodo").has_kspace
        assert not any(
            w.has_kspace for name, w in workloads.items() if name != "rhodo"
        )

    def test_chute_gpu_unsupported(self):
        assert not get_workload("chute").gpu_supported
