"""Tests for the Table 3 instance specs and the power models."""

import numpy as np
import pytest

from repro.platforms.instances import CPU_INSTANCE, GPU_INSTANCE
from repro.platforms.power import (
    MIN_RUN_SECONDS,
    SAMPLING_PERIOD_S,
    CpuPowerModel,
    GpuPowerModel,
    PowerSampler,
    UnderSampledRunWarning,
    reset_under_sample_warnings,
)


class TestTable3Specs:
    def test_cpu_instance_matches_table3(self):
        cpu = CPU_INSTANCE.cpu
        assert cpu.model == "Intel Xeon Platinum 8358"
        assert cpu.cores == 32 and cpu.threads == 64
        assert cpu.frequency_ghz == pytest.approx(2.6)
        assert cpu.turbo_ghz == pytest.approx(3.4)
        assert cpu.l3_mb_shared == pytest.approx(48.0)
        assert cpu.tdp_watts == pytest.approx(250.0)
        assert CPU_INSTANCE.sockets == 2
        assert CPU_INSTANCE.memory_gb == 1024
        assert CPU_INSTANCE.total_cores == 64

    def test_gpu_instance_matches_table3(self):
        host = GPU_INSTANCE.cpu
        assert host.model == "Intel Xeon Platinum 8167M"
        assert host.cores == 26
        assert GPU_INSTANCE.total_cores == 52
        gpu = GPU_INSTANCE.gpu
        assert gpu is not None
        assert gpu.model == "NVIDIA V100"
        assert gpu.sms == 84
        assert gpu.global_memory_gb == 16
        assert gpu.frequency_ghz == pytest.approx(1.35)
        assert gpu.tdp_watts == pytest.approx(300.0)
        assert GPU_INSTANCE.n_gpus == 8
        assert GPU_INSTANCE.memory_gb == 768

    def test_resource_validation(self):
        CPU_INSTANCE.validate_resources(n_ranks=64)
        with pytest.raises(ValueError, match="physical"):
            CPU_INSTANCE.validate_resources(n_ranks=65)
        GPU_INSTANCE.validate_resources(n_gpus=8)
        with pytest.raises(ValueError):
            GPU_INSTANCE.validate_resources(n_gpus=9)


class TestCpuPowerModel:
    def test_idle_floor(self):
        model = CpuPowerModel(CPU_INSTANCE)
        assert model.watts(0, 0.0) == pytest.approx(CPU_INSTANCE.idle_watts)

    def test_monotonic_in_cores_and_utilization(self):
        model = CpuPowerModel(CPU_INSTANCE)
        assert model.watts(64, 0.5) > model.watts(32, 0.5)
        assert model.watts(32, 0.8) > model.watts(32, 0.4)

    def test_capped_at_tdp(self):
        model = CpuPowerModel(CPU_INSTANCE)
        cap = CPU_INSTANCE.idle_watts + 2 * 250.0
        assert model.watts(64, 1.0) <= cap

    def test_invalid_inputs(self):
        model = CpuPowerModel(CPU_INSTANCE)
        with pytest.raises(ValueError):
            model.watts(-1, 0.5)
        with pytest.raises(ValueError):
            model.watts(4, 1.5)


class TestGpuPowerModel:
    def test_requires_gpus(self):
        with pytest.raises(ValueError):
            GpuPowerModel(CPU_INSTANCE)

    def test_idle_devices_draw_floor(self):
        model = GpuPowerModel(GPU_INSTANCE)
        base = model.watts(0, 0.0)
        # 8 idle V100s at the 40 W floor plus the host idle.
        assert base == pytest.approx(GPU_INSTANCE.idle_watts + 8 * 40.0)

    def test_utilization_scales_device_draw(self):
        model = GpuPowerModel(GPU_INSTANCE)
        assert model.watts(8, 0.9) > model.watts(8, 0.2)

    def test_host_contribution(self):
        model = GpuPowerModel(GPU_INSTANCE)
        assert model.watts(4, 0.5, host_active_cores=48, host_utilization=0.5) > model.watts(
            4, 0.5
        )


class TestPowerSampler:
    def test_sampling_rate_half_second(self):
        sampler = PowerSampler(seed=1)
        samples = sampler.sample_run(200.0, 10.0)
        assert len(samples) == int(10.0 / SAMPLING_PERIOD_S)
        assert samples[1].time_s - samples[0].time_s == pytest.approx(0.5)

    def test_short_run_warns_but_returns_series(self):
        """Section 4.2: runs shorter than 10 s are flagged, not rejected."""
        reset_under_sample_warnings()
        with pytest.warns(UnderSampledRunWarning, match="5.00 s"):
            samples = PowerSampler().sample_run(200.0, MIN_RUN_SECONDS / 2)
        assert len(samples) == int((MIN_RUN_SECONDS / 2) / SAMPLING_PERIOD_S)

    def test_short_run_warning_fires_once_per_process(self):
        reset_under_sample_warnings()
        with pytest.warns(UnderSampledRunWarning):
            PowerSampler().sample_run(200.0, 1.0)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", UnderSampledRunWarning)
            PowerSampler().sample_run(200.0, 1.0)

    def test_zero_duration_still_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            PowerSampler().sample_run(200.0, 0.0)

    def test_average_recovers_mean(self):
        sampler = PowerSampler(seed=2)
        samples = sampler.sample_run(300.0, 60.0)
        assert PowerSampler.average(samples) == pytest.approx(300.0, rel=0.02)

    def test_average_of_nothing_rejected(self):
        with pytest.raises(ValueError):
            PowerSampler.average([])

    def test_deterministic_per_seed(self):
        a = PowerSampler(seed=3).sample_run(100.0, 12.0)
        b = PowerSampler(seed=3).sample_run(100.0, 12.0)
        assert all(x.watts == y.watts for x, y in zip(a, b))
