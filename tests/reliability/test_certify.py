"""Certification stack: chain mechanics, manifests, replay, tampering.

The tamper tests are the satellite contract of ISSUE 9: flipping one
byte in a snapshot, truncating the digest chain, and editing a
manifest field must each fail certification with a *distinct*,
attributable error — ``CheckpointIntegrityError`` vs
``DigestChainError`` vs ``ManifestError`` — never a silent pass and
never a generic exception from deep inside numpy.
"""

import json
import shutil

import numpy as np
import pytest

from repro.md import RunConfig
from repro.reliability import (
    CertificationRecorder,
    CheckpointIntegrityError,
    CheckpointManager,
    ResilientRunner,
)
from repro.reliability.certify import (
    CertificationError,
    CertificationManifest,
    DigestChain,
    DigestChainError,
    DigestRecorder,
    ManifestError,
    certify_run,
    chain_path,
    interval_digest,
    manifest_path,
)
from repro.suite import get_benchmark

STEPS = 20
EVERY = 5


def _make_sim():
    return get_benchmark("lj").build(150)


def _certified_run(directory):
    """Produce a certified serial run directory (the CLI wiring)."""
    sim = _make_sim()
    manager = CheckpointManager(directory, every=EVERY)
    certifier = CertificationRecorder(directory, every=EVERY)
    runner = ResilientRunner(sim, manager, digest=certifier)
    runner.run(STEPS)
    certifier.finalize(
        sim, steps=STEPS, benchmark="lj", n_atoms=150,
        checkpoint_every=EVERY,
    )
    sim.close()
    return directory


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    return _certified_run(tmp_path_factory.mktemp("certified"))


@pytest.fixture()
def tampered(run_dir, tmp_path):
    """A fresh clone of the certified run dir, safe to corrupt."""
    clone = tmp_path / "clone"
    shutil.copytree(run_dir, clone)
    return clone


class TestDigestChain:
    def test_observe_appends_and_moves_head(self):
        sim = _make_sim()
        chain = DigestChain()
        genesis = chain.head
        sim.run(RunConfig(steps=2))
        chain.observe(sim)
        assert chain.head != genesis and len(chain) == 1
        sim.run(RunConfig(steps=1))
        head_one = chain.head
        chain.observe(sim)
        assert chain.head != head_one and len(chain) == 2
        chain.verify()
        sim.close()

    def test_same_step_observation_is_idempotent_verification(self):
        sim = _make_sim()
        chain = DigestChain()
        sim.run(RunConfig(steps=2))
        chain.observe(sim)
        chain.observe(sim)  # re-execution of a recorded step: verified
        assert len(chain) == 1
        sim.close()

    def test_diverged_reexecution_fails_loudly(self):
        sim = _make_sim()
        chain = DigestChain()
        sim.run(RunConfig(steps=2))
        entry = chain.observe(sim)
        forged = DigestChain()
        forged.entries = [
            type(entry)(
                index=0, step=entry.step, digest="0" * 64,
                chained=entry.chained, witness=entry.witness,
            )
        ]
        with pytest.raises(DigestChainError, match="diverged"):
            forged.observe(sim)
        sim.close()

    def test_editing_an_entry_invalidates_the_tail(self, tmp_path):
        sim = _make_sim()
        recorder = DigestRecorder(every=2, path=tmp_path / "chain.jsonl")
        sim.run(RunConfig(steps=6, digest=recorder))
        sim.close()
        lines = (tmp_path / "chain.jsonl").read_text().splitlines()
        record = json.loads(lines[1])
        record["witness"]["total_energy"] += 1e-9
        lines[1] = json.dumps(record, sort_keys=True)
        (tmp_path / "chain.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(DigestChainError, match="chained hash"):
            DigestChain.load(tmp_path / "chain.jsonl")

    def test_rewind_drops_tail_entries(self):
        sim = _make_sim()
        recorder = DigestRecorder(every=2)
        sim.run(RunConfig(steps=6, digest=recorder))
        sim.close()
        assert recorder.chain.steps() == [2, 4, 6]
        assert recorder.rewind_to(4) == 1
        assert recorder.chain.steps() == [2, 4]
        recorder.chain.verify()

    def test_save_load_roundtrip_preserves_head(self, tmp_path):
        sim = _make_sim()
        recorder = DigestRecorder(every=2, path=tmp_path / "c.jsonl")
        sim.run(RunConfig(steps=4, digest=recorder))
        sim.close()
        loaded = DigestChain.load(tmp_path / "c.jsonl")
        assert loaded.head == recorder.chain.head
        assert loaded.steps() == recorder.chain.steps()

    def test_wrong_schema_is_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(json.dumps({"schema": "bogus/9"}) + "\n")
        with pytest.raises(DigestChainError, match="schema"):
            DigestChain.load(path)

    def test_digest_is_memory_layout_neutral(self):
        # The canonical byte stream is little-endian float64 C-order,
        # so the digest is a function of the numbers, not of strides
        # or memory order.
        sim = _make_sim()
        sim.run(RunConfig(steps=2))
        first = interval_digest(sim)
        sim.system.positions = np.asfortranarray(sim.system.positions)
        assert interval_digest(sim) == first
        sim.close()


class TestManifest:
    def test_roundtrip(self, run_dir):
        manifest = CertificationManifest.load(manifest_path(run_dir))
        assert manifest.benchmark == "lj"
        assert manifest.steps == STEPS
        assert manifest.chain_entries == len(
            DigestChain.load(chain_path(run_dir))
        )
        assert manifest.manifest_sha256 == manifest.checksum()

    def test_environment_summary_names_the_execution_mode(self, run_dir):
        manifest = CertificationManifest.load(manifest_path(run_dir))
        line = manifest.environment_summary()
        assert "backend=" in line and "precision=" in line
        assert "provider=" in line and "workers=" in line


class TestCertifyRun:
    def test_fresh_serial_run_certifies_bitwise(self, run_dir):
        report = certify_run(run_dir, seed=3)
        assert report.verdict == "bitwise"
        assert report.tolerance is None
        assert report.checked_steps

    def test_interval_choice_is_seedable(self, run_dir):
        a = certify_run(run_dir, seed=12)
        b = certify_run(run_dir, seed=12)
        assert a.interval == b.interval

    def test_at_step_pins_the_interval(self, run_dir):
        manager = CheckpointManager(run_dir, every=EVERY)
        start = int(manager.checkpoints()[0].stem.rsplit("-", 1)[-1])
        report = certify_run(run_dir, at_step=start)
        assert report.interval[0] == start

    def test_cross_backend_replay_gets_cross_mode_verdict(self, run_dir):
        report = certify_run(run_dir, seed=3, backend="numpy_ref")
        assert report.verdict == "cross-mode-equivalent"
        assert report.tolerance == 1e-10

    def test_forged_digest_diagnostic_names_the_environment(self, tampered):
        # An attacker with full write access rebuilds a self-consistent
        # chain around a forged digest and re-seals the manifest; only
        # the replay itself can catch it — and the error must attribute
        # the mismatch by naming backend, provider, and precision.
        chain = DigestChain.load(chain_path(tampered))
        forged = DigestChain()
        for entry in chain.entries:
            digest = entry.digest
            if entry is chain.entries[-1]:
                digest = "f" * 64
            forged.append_record(entry.step, digest, entry.witness)
        forged.save(chain_path(tampered))
        manifest = CertificationManifest.load(manifest_path(tampered))
        manifest.chain_head = forged.head
        manifest.seal()
        manifest.save(manifest_path(tampered))
        with pytest.raises(CertificationError) as excinfo:
            certify_run(tampered, at_step=3 * EVERY)
        message = str(excinfo.value)
        assert "backend=" in message
        assert "provider=" in message
        assert "precision=" in message
        assert "recorded under" in message and "replayed under" in message


class TestTamperDetection:
    """The three ISSUE-9 tamper modes, each with its own error type."""

    def test_snapshot_byte_flip_fails_with_integrity_error(self, tampered):
        target = sorted(tampered.glob("ckpt-*.npz"))[0]
        start = int(target.stem.rsplit("-", 1)[-1])
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(CheckpointIntegrityError, match="CRC32"):
            certify_run(tampered, at_step=start)

    def test_chain_truncation_fails_with_chain_error(self, tampered):
        lines = chain_path(tampered).read_text().splitlines()
        chain_path(tampered).write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(DigestChainError, match="truncated"):
            certify_run(tampered, seed=0)

    def test_manifest_edit_fails_with_manifest_error(self, tampered):
        path = manifest_path(tampered)
        data = json.loads(path.read_text())
        data["precision"] = "single"
        path.write_text(json.dumps(data))
        with pytest.raises(ManifestError, match="self-checksum"):
            certify_run(tampered, seed=0)

    def test_errors_are_mutually_distinct(self):
        # The attribution contract: three tamper modes, three types,
        # no common ancestor short of ValueError.
        kinds = {CheckpointIntegrityError, DigestChainError, ManifestError}
        assert len(kinds) == 3
        for a in kinds:
            for b in kinds - {a}:
                assert not issubclass(a, b)
