"""CheckpointManager's CRC/size integrity index (ISSUE 9 small fix).

A partially-written or bit-flipped retained checkpoint must be
diagnosed *as such* — truncation vs corruption, named file — instead
of surfacing as an arbitrary numpy deserialization error, and
``restore_latest`` must keep its skip-and-try-older contract with the
damaged file counted out by the integrity check rather than by a lucky
parse failure.
"""

import pytest

from repro.md import RunConfig
from repro.reliability import CheckpointIntegrityError, CheckpointManager
from repro.suite import get_benchmark


@pytest.fixture()
def run(tmp_path):
    sim = get_benchmark("lj").build(150)
    manager = CheckpointManager(tmp_path, every=4)
    sim.run(RunConfig(steps=12, checkpoint=manager))
    yield sim, manager
    sim.close()


class TestIntegrityIndex:
    def test_every_write_is_recorded_and_verifies(self, run):
        _, manager = run
        assert manager.integrity_path().exists()
        for path in manager.checkpoints():
            assert manager.verify_integrity(path) is True

    def test_bit_flip_is_diagnosed_as_corruption(self, run):
        _, manager = run
        target = manager.checkpoints()[-1]
        data = bytearray(target.read_bytes())
        data[len(data) // 3] ^= 0x01
        target.write_bytes(bytes(data))
        with pytest.raises(CheckpointIntegrityError, match="CRC32"):
            manager.verify_integrity(target)

    def test_truncation_is_diagnosed_as_truncation(self, run):
        _, manager = run
        target = manager.checkpoints()[-1]
        data = target.read_bytes()
        target.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointIntegrityError, match="truncated"):
            manager.verify_integrity(target)

    def test_legacy_directory_is_unverified_not_failed(self, run):
        _, manager = run
        manager.integrity_path().unlink()
        for path in manager.checkpoints():
            assert manager.verify_integrity(path) is False

    def test_pruned_files_leave_the_index(self, run):
        sim, manager = run
        import json

        index = json.loads(manager.integrity_path().read_text())
        names = {p.name for p in manager.checkpoints()}
        assert set(index) == names  # pruned entries were dropped

    def test_restore_latest_skips_damaged_newest(self, run):
        sim, manager = run
        newest = manager.checkpoints()[-1]
        older = manager.checkpoints()[-2]
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(bytes(data))
        path, snapshot = manager.restore_latest(sim)
        assert path == older
        assert snapshot.step_number == int(older.stem.rsplit("-", 1)[-1])

    def test_error_names_the_file(self, run):
        _, manager = run
        target = manager.checkpoints()[0]
        target.write_bytes(b"\x00" * 64)
        with pytest.raises(CheckpointIntegrityError, match=target.name):
            manager.verify_integrity(target)
