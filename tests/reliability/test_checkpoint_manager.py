"""Tests for the CheckpointManager policy layer: cadence, atomicity,
retention, corrupted-file recovery, and metrics."""

import numpy as np
import pytest

from repro.md.restart import SnapshotError
from repro.observability import MetricsRegistry
from repro.reliability import CheckpointManager
from repro.suite import get_benchmark


def _sim(n_atoms=400):
    sim = get_benchmark("lj").build(n_atoms)
    sim.setup()
    return sim


class TestCadence:
    def test_periodic_writes_during_run(self, tmp_path):
        sim = _sim()
        manager = CheckpointManager(tmp_path, every=5, keep_last=10)
        sim.run(20, checkpoint=manager)
        assert manager.writes == 4
        steps = [int(p.stem.split("-")[-1]) for p in manager.checkpoints()]
        assert steps == [5, 10, 15, 20]

    def test_every_zero_disables_cadence(self, tmp_path):
        sim = _sim()
        manager = CheckpointManager(tmp_path, every=0)
        assert manager.maybe_checkpoint(sim) is None
        sim.run(5, checkpoint=manager)
        assert manager.writes == 0
        assert manager.checkpoints() == []
        # Explicit writes still work with the cadence off.
        assert manager.write(sim) is not None
        assert manager.writes == 1

    def test_off_cadence_step_skipped(self, tmp_path):
        sim = _sim()
        sim.run(3)
        manager = CheckpointManager(tmp_path, every=5)
        assert manager.maybe_checkpoint(sim) is None


class TestRetentionAndAtomicity:
    def test_keep_last_prunes_oldest(self, tmp_path):
        sim = _sim()
        manager = CheckpointManager(tmp_path, every=5, keep_last=2)
        sim.run(20, checkpoint=manager)
        assert manager.writes == 4
        steps = [int(p.stem.split("-")[-1]) for p in manager.checkpoints()]
        assert steps == [15, 20]
        assert manager.latest() == manager.path_for(20)

    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointManager(tmp_path, keep_last=0)

    def test_no_temp_files_left_behind(self, tmp_path):
        sim = _sim()
        manager = CheckpointManager(tmp_path, every=5)
        sim.run(10, checkpoint=manager)
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_stray_temp_file_invisible_to_recovery(self, tmp_path):
        """A temp file abandoned by a crash is not a checkpoint."""
        sim = _sim()
        manager = CheckpointManager(tmp_path, every=0)
        manager.write(sim)
        stray = tmp_path / f".{manager.path_for(999).name}.tmp"
        stray.write_bytes(b"\x00" * 512)
        assert manager.checkpoints() == [manager.path_for(0)]


class TestRecovery:
    def test_restore_latest_round_trips(self, tmp_path):
        sim = _sim()
        manager = CheckpointManager(tmp_path, every=5, keep_last=10)
        sim.run(10, checkpoint=manager)
        reference = sim.system.positions.copy()
        sim.run(7)  # wander off
        path, snapshot = manager.restore_latest(sim)
        assert path == manager.path_for(10)
        assert snapshot.step_number == 10
        assert sim.step_number == 10
        assert np.array_equal(sim.system.positions, reference)

    def test_restore_latest_skips_corrupted_newest(self, tmp_path):
        sim = _sim()
        manager = CheckpointManager(tmp_path, every=5, keep_last=10)
        sim.run(10, checkpoint=manager)
        manager.path_for(10).write_bytes(b"garbage")
        path, snapshot = manager.restore_latest(sim)
        assert path == manager.path_for(5)
        assert snapshot.step_number == 5
        assert sim.step_number == 5

    def test_restore_latest_raises_when_all_corrupt(self, tmp_path):
        sim = _sim()
        manager = CheckpointManager(tmp_path, every=5, keep_last=10)
        sim.run(10, checkpoint=manager)
        for path in manager.checkpoints():
            path.write_bytes(b"garbage")
        with pytest.raises(SnapshotError, match="no restorable checkpoint"):
            manager.restore_latest(sim)

    def test_restore_latest_raises_when_empty(self, tmp_path):
        sim = _sim()
        manager = CheckpointManager(tmp_path)
        with pytest.raises(SnapshotError, match="no restorable checkpoint"):
            manager.restore_latest(sim)


class TestObservability:
    def test_metrics_counted(self, tmp_path):
        registry = MetricsRegistry()
        sim = _sim()
        manager = CheckpointManager(
            tmp_path, every=5, keep_last=10, metrics=registry
        )
        sim.run(10, checkpoint=manager)
        assert registry.counter("md_checkpoints_total").value == 2
        assert registry.gauge("md_checkpoint_bytes").value > 0
