"""Crash-injection matrix: deterministic worker faults at chosen steps
and phases, with supervised recovery back to the reference trajectory.

Faults come from :class:`FaultPlan` (kill / hang, per worker, per step,
per phase).  Recovery goes through :class:`ResilientRunner`: restore the
newest checkpoint, respawn the pool, and — when restarts are exhausted —
degrade to the serial executor.  A recovered parallel run must finish
*bitwise* identical to the uninterrupted one; the serial degradation
path is held to ``1e-10``.
"""

import numpy as np
import pytest

from repro.md.simulation import SerialForceExecutor
from repro.observability import MetricsRegistry
from repro.parallel.engine import ParallelForceExecutor
from repro.reliability import CheckpointManager, FaultPlan, ResilientRunner
from repro.suite import get_benchmark

SIZES = {"lj": 600, "chain": 400}
STEPS = 40
WORKERS = 2


def _build(name, *, workers=WORKERS, fault_plan=None, barrier_timeout=30.0):
    sim = get_benchmark(name).build(SIZES[name])
    executor = ParallelForceExecutor(
        workers,
        quasi_2d=(name == "chute"),
        fault_plan=fault_plan,
        barrier_timeout=barrier_timeout,
    )
    sim.force_executor = executor
    executor.bind(sim)
    return sim


def _final_state(sim):
    return {
        "positions": sim.system.positions.copy(),
        "velocities": sim.system.velocities.copy(),
        "step": sim.step_number,
    }


def _reference(name):
    sim = _build(name)
    try:
        sim.run(STEPS)
        return _final_state(sim)
    finally:
        sim.force_executor.close()


@pytest.fixture(scope="module")
def lj_reference():
    return _reference("lj")


@pytest.fixture(scope="module")
def chain_reference():
    return _reference("chain")


def _run_resilient(sim, tmp_path, *, max_restarts=2, manager_plan=None,
                   metrics=None):
    manager = CheckpointManager(
        tmp_path, every=10, keep_last=3, fault_plan=manager_plan
    )
    runner = ResilientRunner(
        sim,
        manager,
        max_restarts=max_restarts,
        backoff_seconds=0.01,
        metrics=metrics,
    )
    try:
        runner.run(STEPS)
    finally:
        sim.force_executor.close()
    return runner, manager


def _assert_bitwise(sim, reference):
    assert sim.step_number == reference["step"]
    assert np.array_equal(sim.system.positions, reference["positions"])
    assert np.array_equal(sim.system.velocities, reference["velocities"])


class TestKillRecovery:
    def test_kill_mid_step_recovers_bitwise(self, tmp_path, lj_reference):
        metrics = MetricsRegistry()
        sim = _build("lj", fault_plan=FaultPlan.parse("kill:1:17"))
        runner, _ = _run_resilient(sim, tmp_path, metrics=metrics)

        assert [e.action for e in runner.events] == ["respawn"]
        event = runner.events[0]
        assert event.step == 17
        assert event.resumed_from_step == 10
        assert event.restart_index == 1
        assert not runner.degraded
        # The pool really was torn down and respawned.
        assert sim.force_executor.spawn_generation >= 2
        assert metrics.counter("md_worker_failures_total").value == 1
        assert metrics.counter("md_restarts_total").value == 1
        _assert_bitwise(sim, lj_reference)

    def test_kill_during_rebuild_recovers_bitwise(self, tmp_path, lj_reference):
        sim = _build("lj", fault_plan=FaultPlan.parse("kill:0:12:rebuild"))
        runner, _ = _run_resilient(sim, tmp_path)
        assert [e.action for e in runner.events] == ["respawn"]
        _assert_bitwise(sim, lj_reference)

    def test_kill_during_checkpoint_write(self, tmp_path, lj_reference):
        """Dying mid-checkpoint loses that checkpoint, not the run."""
        plan = FaultPlan.parse("kill:0:15:checkpoint")
        sim = _build("lj", fault_plan=plan)
        runner, manager = _run_resilient(sim, tmp_path, manager_plan=plan)

        assert [e.action for e in runner.events] == ["respawn"]
        # The faulted write (step 20) never landed, so recovery fell
        # back to the previous good checkpoint at step 10.
        assert runner.events[0].resumed_from_step == 10
        # After recovery the replayed step-20 checkpoint is written for
        # real, and no partial temp file survives in the directory.
        steps = [int(p.stem.split("-")[-1]) for p in manager.checkpoints()]
        assert 20 in steps
        assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        _assert_bitwise(sim, lj_reference)

    def test_langevin_benchmark_recovers_bitwise(
        self, tmp_path, chain_reference
    ):
        """RNG-stream restore keeps even thermostatted runs bitwise."""
        sim = _build("chain", fault_plan=FaultPlan.parse("kill:1:15"))
        runner, _ = _run_resilient(sim, tmp_path)
        assert [e.action for e in runner.events] == ["respawn"]
        _assert_bitwise(sim, chain_reference)

    def test_env_var_fault_plan(self, tmp_path, lj_reference, monkeypatch):
        """$REPRO_FAULT_PLAN drives injection without code changes."""
        monkeypatch.setenv("REPRO_FAULT_PLAN", "kill:1:17")
        sim = _build("lj")  # no explicit plan: engine reads the env
        runner, _ = _run_resilient(sim, tmp_path)
        assert [e.action for e in runner.events] == ["respawn"]
        _assert_bitwise(sim, lj_reference)


class TestHangRecovery:
    def test_hang_detected_and_recovered(self, tmp_path, lj_reference):
        """A hung worker trips the barrier timeout, then recovery."""
        sim = _build(
            "lj",
            fault_plan=FaultPlan.parse("hang:0:25"),
            barrier_timeout=2.0,
        )
        runner, _ = _run_resilient(sim, tmp_path)
        assert [e.action for e in runner.events] == ["respawn"]
        assert runner.events[0].resumed_from_step == 20
        _assert_bitwise(sim, lj_reference)


class TestGracefulDegradation:
    def test_exhausted_restarts_degrade_to_serial(
        self, tmp_path, lj_reference
    ):
        metrics = MetricsRegistry()
        sim = _build("lj", fault_plan=FaultPlan.parse("kill:0:12;kill:1:20"))
        runner, _ = _run_resilient(
            sim, tmp_path, max_restarts=1, metrics=metrics
        )

        assert [e.action for e in runner.events] == [
            "respawn",
            "degrade-serial",
        ]
        assert runner.degraded
        assert isinstance(sim.force_executor, SerialForceExecutor)
        assert metrics.counter("md_degradations_total").value == 1
        # Serial summation order differs from the parallel engine, so
        # the degraded finish is near-bitwise rather than bitwise.
        assert sim.step_number == lj_reference["step"]
        delta = np.abs(sim.system.positions - lj_reference["positions"]).max()
        assert delta <= 1e-10
