"""Checkpoints are kernel-backend-neutral: a snapshot written under one
backend restores bitwise under any other, and the continued double-
precision trajectories stay within the backend-equivalence tolerance."""

import numpy as np
import pytest

from repro.md.kernels import get_backend
from repro.md.kernels.compiled import compiled_available
from repro.md.lattice import lj_melt_system
from repro.md.potentials.lj import LennardJonesCut
from repro.md.simulation import Simulation
from repro.reliability import CheckpointManager

BACKENDS = ("numpy_ref", "numpy_fast", "compiled")


def _sim(backend):
    return Simulation(
        lj_melt_system(256, seed=11),
        [LennardJonesCut(cutoff=2.5)],
        dt=0.005,
        skin=0.3,
        backend=get_backend(backend),
    )


class TestCrossBackendRestore:
    @pytest.mark.parametrize("source", ["numpy_fast", "compiled"])
    @pytest.mark.parametrize("target", BACKENDS)
    def test_snapshot_restores_across_backends(self, tmp_path, source, target):
        if "compiled" in (source, target) and not compiled_available():
            pytest.skip("no compiled provider on this machine")
        writer = _sim(source)
        writer.setup()
        writer.run(5)
        manager = CheckpointManager(tmp_path, every=0)
        manager.write(writer)
        state = writer.system.positions.copy()
        velocities = writer.system.velocities.copy()
        writer.run(5)
        continued = writer.system.positions.copy()

        restored = _sim(target)
        path, snapshot = manager.restore_latest(restored)
        assert snapshot.step_number == 5
        # State restore is exact regardless of which backend wrote it.
        assert np.array_equal(restored.system.positions, state)
        assert np.array_equal(restored.system.velocities, velocities)

        # Continuation at double precision tracks the writer's backend
        # to the backend-equivalence tolerance over the same 5 steps.
        restored.run(5)
        np.testing.assert_allclose(
            restored.system.positions, continued, rtol=1e-10, atol=1e-10
        )

    def test_same_backend_continuation_is_bitwise(self, tmp_path):
        if not compiled_available():
            pytest.skip("no compiled provider on this machine")
        sim = _sim("compiled")
        sim.setup()
        sim.run(5)
        manager = CheckpointManager(tmp_path, every=0)
        manager.write(sim)
        sim.run(5)

        restored = _sim("compiled")
        manager.restore_latest(restored)
        restored.run(5)
        assert np.array_equal(
            restored.system.positions, sim.system.positions
        )
