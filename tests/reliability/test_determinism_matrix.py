"""Cross-backend / cross-worker determinism matrix, digest-chain oracle.

This is the shared fixture that replaces the ad-hoc per-PR parity
assertions: every determinism claim the engine makes is stated as a
property of the certify digest chain.

Two regimes, matching ``docs/REPRODUCIBILITY.md``:

* **bitwise** — the parallel engine across 1/2/4 workers, and repeated
  runs of any fixed configuration: chain *heads* must be equal, i.e.
  every interval state is bit-for-bit identical;
* **equivalent** — the three kernel backends at float64: the kernels
  differ in summation order, so trajectories agree to the last ulp but
  not bit for bit.  Chains must have identical shape (same steps), the
  witness observables must agree within the double-tier parity
  tolerance, and the final states must agree within it too.
"""

import numpy as np
import pytest

from repro.md import RunConfig
from repro.md.kernels import get_backend
from repro.md.kernels.compiled import compiled_available
from repro.md.precision import PARITY_TOLERANCES
from repro.parallel.engine import ParallelForceExecutor
from repro.reliability.certify import DigestRecorder
from repro.suite import get_benchmark

BACKENDS = ("numpy_ref", "numpy_fast", "compiled")
BENCHMARKS = ("lj", "eam")
SIZES = {"lj": 150, "eam": 500}
STEPS = 6
EVERY = 2
TOL = PARITY_TOLERANCES["double"]


def _chain_for(benchmark: str, backend: str, workers: int = 0):
    """Run one short certified trajectory; returns (chain, positions).

    ``workers=0`` runs the serial executor; ``workers>=1`` the parallel
    engine with that many workers (a one-worker *parallel* run is its
    own executor family — bitwise with 2/4 workers, not with serial).
    """
    sim = get_benchmark(benchmark).build(SIZES[benchmark])
    sim.set_backend(get_backend(backend))
    if workers >= 1:
        executor = ParallelForceExecutor(
            workers, quasi_2d=(benchmark == "chute")
        )
        sim.force_executor = executor
        executor.bind(sim)
    recorder = DigestRecorder(every=EVERY)
    try:
        sim.run(RunConfig(steps=STEPS, digest=recorder))
        recorder.finalize(sim)
        return recorder.chain, sim.system.positions.copy()
    finally:
        sim.close()


def _skip_unavailable(backend: str) -> None:
    if backend == "compiled" and not compiled_available():
        pytest.skip("no compiled provider on this machine")


@pytest.fixture(scope="module")
def matrix():
    """chains[(benchmark, backend)] -> (DigestChain, final positions)."""
    chains = {}
    for benchmark in BENCHMARKS:
        for backend in BACKENDS:
            if backend == "compiled" and not compiled_available():
                continue
            chains[(benchmark, backend)] = _chain_for(benchmark, backend)
    return chains


class TestWorkerCountBitwise:
    """Parallel 1/2/4 workers: digest-chain heads must be *equal*."""

    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_chain_head_identical_across_worker_counts(self, bench):
        heads = {}
        for workers in (1, 2, 4):
            chain, _ = _chain_for(bench, "numpy_fast", workers=workers)
            heads[workers] = chain.head
        assert heads[1] == heads[2] == heads[4], (
            f"{bench}: parallel-engine chains diverged across worker "
            f"counts: {heads}"
        )


class TestRunRepeatability:
    """The same configuration twice: identical head (bitwise rerun)."""

    @pytest.mark.parametrize("bench", BENCHMARKS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rerun_reproduces_chain_head(self, matrix, bench, backend):
        _skip_unavailable(backend)
        first, _ = matrix[(bench, backend)]
        second, _ = _chain_for(bench, backend)
        assert second.head == first.head


class TestCrossBackendEquivalence:
    """numpy_ref / numpy_fast / compiled at float64: same chain shape,
    witnesses and final state within the double parity tier."""

    @pytest.mark.parametrize("bench", BENCHMARKS)
    @pytest.mark.parametrize("other", ("numpy_fast", "compiled"))
    def test_chain_equivalent_to_reference(self, matrix, bench, other):
        _skip_unavailable(other)
        reference, ref_x = matrix[(bench, "numpy_ref")]
        candidate, cand_x = matrix[(bench, other)]
        assert candidate.steps() == reference.steps()
        for mine, theirs in zip(candidate.entries, reference.entries):
            for name, value in theirs.witness.items():
                scale = max(1.0, abs(value))
                assert abs(mine.witness[name] - value) / scale <= TOL, (
                    f"{bench}/{other} witness {name} diverged at "
                    f"step {mine.step}"
                )
        assert float(np.abs(cand_x - ref_x).max()) <= TOL

    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_chain_catches_different_physics(self, matrix, bench):
        # Sanity for the oracle itself: distinct benchmarks/backends
        # must not collide on heads by construction.
        heads = {
            backend: chain.head
            for (bench_name, backend), (chain, _) in matrix.items()
            if bench_name == bench
        }
        assert len(set(heads.values())) == len(heads), heads
