"""Tests for the deterministic fault-plan parser and dispatcher."""

import pytest

from repro.reliability.faultplan import ENV_VAR, FaultPlan, FaultSpec


class TestParsing:
    def test_single_spec_defaults_to_step_phase(self):
        plan = FaultPlan.parse("kill:1:40")
        assert len(plan) == 1
        spec = plan.specs[0]
        assert (spec.kind, spec.worker, spec.step, spec.phase) == (
            "kill", 1, 40, "step"
        )

    def test_multiple_specs_with_phases(self):
        plan = FaultPlan.parse("kill:1:40;hang:0:80:rebuild;kill:2:120:checkpoint")
        assert [s.phase for s in plan.specs] == ["step", "rebuild", "checkpoint"]
        assert [s.kind for s in plan.specs] == ["kill", "hang", "kill"]

    def test_whitespace_and_empty_chunks_tolerated(self):
        plan = FaultPlan.parse(" kill:0:5 ; ;hang:1:9 ")
        assert len(plan) == 2

    @pytest.mark.parametrize(
        "text",
        [
            "explode:0:5",        # unknown kind
            "kill:0:5:setup",     # unknown phase
            "kill:0",             # too few fields
            "kill:0:5:step:more", # too many fields
            "kill:x:5",           # non-integer worker
            "kill:-1:5",          # negative worker
            "kill:0:-5",          # negative step
        ],
    )
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ValueError, match="fault"):
            FaultPlan.parse(text)

    def test_spec_string_round_trips(self):
        spec = FaultSpec(kind="hang", worker=3, step=17, phase="rebuild")
        assert FaultPlan.parse(spec.spec_string()).specs[0] == spec


class TestEnv:
    def test_unset_env_gives_none(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None

    def test_empty_env_gives_none(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "   ")
        assert FaultPlan.from_env() is None

    def test_env_parses(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "kill:1:7")
        plan = FaultPlan.from_env()
        assert plan is not None and len(plan) == 1


class TestTake:
    def test_fires_at_first_dispatch_at_or_after_step(self):
        plan = FaultPlan.parse("kill:0:10")
        assert plan.take(9, "step") is None
        spec = plan.take(12, "step")  # first dispatch past the step
        assert spec is not None and spec.kind == "kill"

    def test_one_shot_even_after_rollback(self):
        """Replaying earlier steps after recovery must not refire."""
        plan = FaultPlan.parse("kill:0:10")
        assert plan.take(10, "step") is not None
        for step in (5, 10, 50):
            assert plan.take(step, "step") is None
        assert plan.pending() == []

    def test_phase_filtering(self):
        plan = FaultPlan.parse("kill:0:10:rebuild")
        assert plan.take(20, "step") is None
        assert plan.take(20, "checkpoint") is None
        assert plan.take(20, "rebuild") is not None

    def test_specs_fire_in_order(self):
        plan = FaultPlan.parse("kill:0:10;hang:1:10")
        first = plan.take(10, "step")
        second = plan.take(10, "step")
        assert (first.kind, second.kind) == ("kill", "hang")
        assert plan.take(10, "step") is None
