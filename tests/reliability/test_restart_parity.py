"""Restart-parity matrix: snapshot/restore is bit-for-bit on all five
benchmarks, serial and parallel, in the double and mixed dtype policies.

Each case runs an uninterrupted reference for ``2k`` steps, then an
interrupted twin: run ``k`` steps, snapshot, restore into a *freshly
built* simulation, run the remaining ``k`` steps.  The final particle
state must match the reference bitwise (``np.array_equal``, not
allclose) — the whole point of snapshot format v2.  MIXED stores float64
state, so its snapshots round-trip exactly like double's; the narrower
SINGLE storage round-trip lives in ``tests/md/test_precision.py``.
"""

import numpy as np
import pytest

from repro.md.restart import restore_simulation, save_snapshot
from repro.parallel.engine import ParallelForceExecutor
from repro.suite import get_benchmark

SIZES = {"lj": 500, "chain": 400, "eam": 500, "rhodo": 384, "chute": 480}
HALF_STEPS = 10
PRECISIONS = ("double", "mixed")


def _build(name, workers=0, precision="double"):
    sim = get_benchmark(name).build(SIZES[name])
    sim.set_precision(precision)
    if workers:
        executor = ParallelForceExecutor(
            workers, quasi_2d=(name == "chute"), precision=precision
        )
        sim.force_executor = executor
        executor.bind(sim)
    return sim


def _steps(sim, n):
    sim.setup()
    for _ in range(n):
        sim.step()


def _assert_bitwise(restarted, reference):
    assert restarted.step_number == reference.step_number
    assert np.array_equal(restarted.system.positions, reference.system.positions)
    assert np.array_equal(
        restarted.system.velocities, reference.system.velocities
    )
    assert np.array_equal(restarted.system.forces, reference.system.forces)
    assert np.array_equal(restarted.system.images, reference.system.images)
    if reference.system.omega is not None:
        assert np.array_equal(restarted.system.omega, reference.system.omega)
    assert restarted.potential_energy == reference.potential_energy
    assert restarted.virial == reference.virial
    # Rebuild cadence must also survive the restart (same build count
    # means the same pair orderings were in effect at the same steps).
    assert (
        restarted.neighbor.stats.n_builds == reference.neighbor.stats.n_builds
    )


def _restart_case(name, workers, tmp_path, precision="double"):
    reference = _build(name, workers, precision)
    try:
        _steps(reference, 2 * HALF_STEPS)

        interrupted = _build(name, workers, precision)
        try:
            _steps(interrupted, HALF_STEPS)
            path = tmp_path / f"{name}.npz"
            save_snapshot(interrupted, path)
        finally:
            interrupted.force_executor.close()

        restarted = _build(name, workers, precision)
        try:
            restore_simulation(restarted, path)
            for _ in range(HALF_STEPS):
                restarted.step()
            _assert_bitwise(restarted, reference)
        finally:
            restarted.force_executor.close()
    finally:
        reference.force_executor.close()


class TestSerialRestartParity:
    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("name", sorted(SIZES))
    def test_bitwise(self, name, precision, tmp_path):
        _restart_case(name, workers=0, tmp_path=tmp_path, precision=precision)


class TestParallelRestartParity:
    @pytest.mark.parametrize("name", sorted(SIZES))
    def test_bitwise_two_workers(self, name, tmp_path):
        _restart_case(name, workers=2, tmp_path=tmp_path)

    def test_bitwise_two_workers_mixed(self, tmp_path):
        _restart_case("lj", workers=2, tmp_path=tmp_path, precision="mixed")

    def test_bitwise_four_workers(self, tmp_path):
        _restart_case("lj", workers=4, tmp_path=tmp_path)
