"""Property-style snapshot round-trip tests (seeded randomized loops).

No external property-testing dependency: each loop draws benchmark /
seed / step-count combinations from a seeded ``numpy`` generator, runs
the simulation, and checks that ``load_snapshot(save_snapshot(sim))``
reproduces every field exactly.  Error paths (missing, corrupted,
truncated, wrong-version, legacy-v1 files) are exercised explicitly.
"""

import json

import numpy as np
import pytest

from repro.md.restart import (
    FORMAT_VERSION,
    SnapshotError,
    load_snapshot,
    load_system,
    restore_simulation,
    save_snapshot,
)
from repro.suite import get_benchmark

SIZES = {"lj": 400, "chain": 400, "eam": 500, "rhodo": 384, "chute": 480}

_ARRAY_FIELDS = (
    "positions",
    "velocities",
    "forces",
    "images",
    "masses",
    "types",
    "charges",
    "molecule_ids",
)


def _build(name, seed=1234):
    sim = get_benchmark(name).build(SIZES[name], seed=seed)
    return sim


def _run(sim, steps):
    sim.setup()
    for _ in range(steps):
        sim.step()
    return sim


def _assert_system_equal(loaded, original):
    for field in _ARRAY_FIELDS:
        got = getattr(loaded, field)
        want = getattr(original, field)
        assert np.array_equal(got, want), field
    assert np.array_equal(loaded.box.lengths, original.box.lengths)
    assert np.array_equal(loaded.box.periodic, original.box.periodic)
    assert np.array_equal(loaded.box.origin, original.box.origin)
    assert np.array_equal(loaded.topology.bonds, original.topology.bonds)
    assert np.array_equal(loaded.topology.angles, original.topology.angles)
    if original.radii is not None:
        assert np.array_equal(loaded.radii, original.radii)
        assert np.array_equal(loaded.omega, original.omega)
        assert np.array_equal(loaded.torques, original.torques)
    else:
        assert loaded.radii is None


class TestRoundTrip:
    def test_randomized_round_trips(self, tmp_path):
        """Seeded random (benchmark, seed, steps) draws round-trip exactly."""
        rng = np.random.default_rng(20260806)
        names = sorted(SIZES)
        for trial in range(6):
            name = names[int(rng.integers(len(names)))]
            seed = int(rng.integers(1, 10_000))
            steps = int(rng.integers(1, 9))
            sim = _run(_build(name, seed=seed), steps)
            path = tmp_path / f"trial{trial}.npz"
            save_snapshot(sim, path)
            snap = load_snapshot(path)

            assert snap.version == FORMAT_VERSION
            assert snap.step_number == sim.step_number == steps
            assert snap.potential_energy == sim.potential_energy
            assert snap.virial == sim.virial
            _assert_system_equal(snap.system, sim.system)

            # Dynamical state survives the JSON round-trip verbatim.
            state = snap.state
            assert state["integrator"]["type"] == type(sim.integrator).__name__
            want_state = json.loads(
                json.dumps(sim.integrator.state_dict(), default=_jsonify)
            )
            assert state["integrator"]["state"] == want_state
            assert state["counts"]["timesteps"] == sim.counts.timesteps
            assert (
                state["neighbor_stats"] == _roundtrip_json(
                    sim.neighbor.stats.state_dict()
                )
            )

            # Neighbor build inputs captured.
            build_state = sim.neighbor.export_build_state()
            assert snap.neighbor_build is not None
            assert np.array_equal(snap.neighbor_build[0], build_state[0])
            assert np.array_equal(snap.neighbor_build[1], build_state[1])

            # Contact histories (granular benchmark only).
            histories = sim.force_executor.export_contact_histories()
            assert sorted(snap.histories) == sorted(histories)
            for slot, (keys, values) in histories.items():
                assert np.array_equal(snap.histories[slot][0], keys)
                assert np.array_equal(snap.histories[slot][1], values)

    def test_langevin_rng_stream_round_trips(self, tmp_path):
        """The Langevin thermostat's generator state is captured exactly."""
        sim = _run(_build("chain"), 5)
        path = tmp_path / "chain.npz"
        save_snapshot(sim, path)
        langevin = next(
            fix for fix in sim.fixes if hasattr(fix, "rng")
        )
        want = langevin.rng.bit_generator.state
        got = load_snapshot(path).state["fixes"]
        restored = [
            entry["state"] for entry in got if "rng_state" in entry["state"]
        ]
        assert restored, "no fix captured an RNG stream"
        assert _roundtrip_json(want) in [
            entry.get("rng_state") for entry in restored
        ]

    def test_chute_contact_history_round_trips_nonempty(self, tmp_path):
        """After enough steps the granular store is non-trivial and kept."""
        sim = _run(_build("chute"), 8)
        path = tmp_path / "chute.npz"
        save_snapshot(sim, path)
        snap = load_snapshot(path)
        assert snap.histories, "chute should carry a contact-history slot"
        keys, values = next(iter(snap.histories.values()))
        assert keys.shape[0] == values.shape[0]
        assert values.shape[1:] == (3,)

    def test_load_system_matches_snapshot(self, tmp_path):
        sim = _run(_build("lj"), 3)
        path = tmp_path / "lj.npz"
        save_snapshot(sim, path)
        system, step = load_system(path)
        assert step == 3
        _assert_system_equal(system, sim.system)


class TestErrorPaths:
    def _valid_snapshot(self, tmp_path):
        sim = _run(_build("lj"), 2)
        path = tmp_path / "valid.npz"
        save_snapshot(sim, path)
        return sim, path

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="unreadable"):
            load_snapshot(tmp_path / "nope.npz")

    def test_corrupted_file(self, tmp_path):
        _, path = self._valid_snapshot(tmp_path)
        rng = np.random.default_rng(7)
        path.write_bytes(rng.integers(0, 256, size=2048, dtype=np.uint8).tobytes())
        with pytest.raises(SnapshotError, match="unreadable"):
            load_snapshot(path)

    def test_truncated_file(self, tmp_path):
        _, path = self._valid_snapshot(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError, match="unreadable"):
            load_snapshot(path)

    def test_unknown_format_version(self, tmp_path):
        _, path = self._valid_snapshot(tmp_path)
        bad = tmp_path / "v99.npz"
        _resave_with_version(path, bad, 99)
        with pytest.raises(SnapshotError, match="format"):
            load_snapshot(bad)

    def test_wrong_atom_count_rejected(self, tmp_path):
        _, path = self._valid_snapshot(tmp_path)
        other = get_benchmark("lj").build(864)
        other.setup()
        assert other.system.n_atoms != SIZES["lj"]
        with pytest.raises(SnapshotError, match="atoms"):
            restore_simulation(other, path)


class TestV1Compatibility:
    def _make_v1(self, tmp_path):
        sim = _run(_build("lj"), 4)
        v2 = tmp_path / "v2.npz"
        save_snapshot(sim, v2)
        v1 = tmp_path / "v1.npz"
        _resave_with_version(v2, v1, 1, strip_v2_keys=True)
        return sim, v1

    def test_v1_detected_and_particle_state_loads(self, tmp_path):
        sim, v1 = self._make_v1(tmp_path)
        snap = load_snapshot(v1)
        assert snap.version == 1
        assert snap.state == {}
        assert snap.neighbor_build is None
        assert snap.histories == {}
        _assert_system_equal(snap.system, sim.system)

    def test_restore_rejects_v1_by_default(self, tmp_path):
        _, v1 = self._make_v1(tmp_path)
        fresh = _build("lj")
        fresh.setup()
        with pytest.raises(SnapshotError, match="v1"):
            restore_simulation(fresh, v1)

    def test_restore_accepts_v1_when_opted_in(self, tmp_path):
        sim, v1 = self._make_v1(tmp_path)
        fresh = _build("lj")
        fresh.setup()
        snap = restore_simulation(fresh, v1, allow_v1=True)
        assert snap.version == 1
        assert fresh.step_number == sim.step_number
        assert np.array_equal(fresh.system.positions, sim.system.positions)
        assert np.array_equal(fresh.system.velocities, sim.system.velocities)
        # The documented lossy part: forces come from a fresh recompute,
        # which for plain NVE LJ still matches the saved ones closely.
        assert np.abs(fresh.system.forces - sim.system.forces).max() < 1e-9


def _jsonify(obj):
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(type(obj).__name__)


def _roundtrip_json(obj):
    return json.loads(json.dumps(obj, default=_jsonify))


def _resave_with_version(src, dst, version, strip_v2_keys=False):
    """Rewrite a valid v2 file under a different format_version tag."""
    with np.load(src) as data:
        payload = {key: data[key] for key in data.files}
    payload["format_version"] = np.array([version])
    if strip_v2_keys:
        for key in list(payload):
            if key.startswith(("hist", "neigh_")) or key in (
                "state_json",
                "potential_energy",
                "virial",
            ):
                payload.pop(key)
    with open(dst, "wb") as handle:
        np.savez_compressed(handle, **payload)
