"""Result-cache behavior: LRU bound, disk layer, corruption honesty."""

import json

from repro.observability.metrics import MetricsRegistry
from repro.service import JobResult, ResultCache


def result(key: str, energy: float = -1.0) -> JobResult:
    return JobResult(
        key=key,
        benchmark="lj",
        n_atoms=500,
        steps=10,
        seed=1,
        precision="double",
        backend="numpy_fast",
        backend_provider=None,
        total_energy=energy,
        potential_energy=energy,
        temperature=1.0,
        state_digest="d" * 64,
        wall_seconds=0.1,
        ts_per_s=100.0,
    )


class TestMemoryLayer:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("k1") is None
        cache.put("k1", result("k1"))
        assert cache.get("k1").key == "k1"
        assert cache.hits == 1 and cache.misses == 1

    def test_size_bound_evicts_lru(self):
        cache = ResultCache(3)
        for i in range(3):
            cache.put(f"k{i}", result(f"k{i}"))
        cache.get("k0")  # refresh k0; k1 is now the LRU entry
        cache.put("k3", result("k3"))
        assert len(cache) == 3
        assert cache.evictions == 1
        assert "k1" not in cache
        assert {"k0", "k2", "k3"} <= set(cache.keys())

    def test_bound_holds_under_many_inserts(self):
        cache = ResultCache(5)
        for i in range(50):
            cache.put(f"k{i}", result(f"k{i}"))
        assert len(cache) == 5
        assert cache.evictions == 45

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        cache = ResultCache(2, metrics=metrics)
        cache.get("nope")
        cache.put("a", result("a"))
        cache.get("a")
        cache.put("b", result("b"))
        cache.put("c", result("c"))  # evicts "a"
        assert metrics.counter("service_cache_misses_total").value == 1
        assert metrics.counter("service_cache_hits_total").value == 1
        assert metrics.counter("service_cache_evictions_total").value == 1
        assert metrics.gauge("service_cache_entries").value == 2


class TestDiskLayer:
    def test_roundtrip_and_promotion(self, tmp_path):
        first = ResultCache(4, directory=tmp_path)
        first.put("k1", result("k1", energy=-7.5))
        # A fresh cache (new process in spirit) reads the same file.
        second = ResultCache(4, directory=tmp_path)
        got = second.get("k1")
        assert got is not None and got.total_energy == -7.5
        assert "k1" in second.keys()  # promoted into memory

    def test_memory_eviction_keeps_disk_copy(self, tmp_path):
        cache = ResultCache(1, directory=tmp_path)
        cache.put("k1", result("k1"))
        cache.put("k2", result("k2"))  # evicts k1 from memory only
        assert "k1" not in cache.keys()
        assert cache.get("k1") is not None  # served from disk

    def test_corrupt_file_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(4, directory=tmp_path)
        cache.path_for("bad").write_text("{not json")
        assert cache.get("bad") is None

    def test_disk_write_is_atomic_layout(self, tmp_path):
        cache = ResultCache(4, directory=tmp_path)
        cache.put("k1", result("k1"))
        files = list(tmp_path.iterdir())
        assert [f.name for f in files] == ["k1.json"]  # no tmp litter
        assert json.loads(files[0].read_text())["key"] == "k1"
