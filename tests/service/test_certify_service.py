"""Service-layer certification: digest heads through spool, pool, cache.

The centerpiece is the PR-8 wire-format regression lock: a deck job
with ``steps=None`` submitted through the *full* transport (spool file
→ server claim → worker pool → result cache) must produce the exact
digest-chain head a direct in-process ``execute_job`` of the same spec
produces.  If any hop re-serializes the spec lossily (the PR-8 bug
resurrected ``steps=None`` as the field default 100), the worker runs
different physics, the chains diverge at entry one, and the heads —
and this test — fail.

``audit_cache`` is exercised against the same spool's cache directory:
the stored records must verify (chain linkage, head, self-address) and
a deliberately corrupted record must surface as a finding, not an
exception.
"""

import json
import threading

import pytest

from repro.reliability.certify import DigestChain, audit_cache
from repro.service import BatchService, JobSpec, SpoolClient, SpoolServer
from repro.service.runner import execute_job
from repro.service.spec import JobResult

DECK = """\
units lj
lattice fcc 0.8442
region box block 0 4 0 4 0 4
create_box 1 box
create_atoms 1 box
mass 1 1.0
pair_style lj/cut 2.5
pair_coeff 1 1 1.0 1.0 2.5
velocity all create 1.44 87287
timestep 0.005
run 10
"""


@pytest.fixture(scope="module")
def spool(tmp_path_factory):
    spool_dir = tmp_path_factory.mktemp("spool")
    service = BatchService(
        1, cache_dir=spool_dir / "cache", poll_seconds=0.02
    )
    server = SpoolServer(spool_dir, service, poll=0.02)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"max_seconds": 120}, daemon=True
    )
    thread.start()
    yield spool_dir
    server.request_stop()
    thread.join(timeout=30)
    service.close()


class TestDeckStepsNoneRegression:
    """Lock for the PR-8 fix: steps=None must survive every hop."""

    def test_spooled_deck_job_matches_direct_head(self, spool):
        spec = JobSpec(deck=DECK, steps=None, workers=1)
        spooled = SpoolClient(spool).run(spec, timeout=120)
        direct = execute_job(spec)
        assert spooled.steps == 10  # the deck's own run count, not 100
        assert direct.steps == 10
        assert spooled.digest_head == direct.digest_head
        assert spooled.state_digest == direct.state_digest
        assert len(spooled.digest_chain) == len(direct.digest_chain)

    def test_cached_record_certifies_under_its_address(self, spool):
        report = audit_cache(spool / "cache")
        assert report.ok, report.findings
        assert report.scanned >= 1
        assert report.verified == report.scanned

    def test_cache_replay_reproduces_heads(self, spool):
        report = audit_cache(spool / "cache", replay=True, limit=1, seed=0)
        assert report.ok, report.findings
        assert report.replayed == 1


class TestResultWireFormat:
    def test_digest_fields_survive_json_roundtrip(self):
        result = execute_job(
            JobSpec(benchmark="lj", n_atoms=150, steps=8, seed=5)
        )
        wired = JobResult.from_json(json.loads(json.dumps(result.to_json())))
        assert wired.digest_head == result.digest_head
        assert wired.digest_every == result.digest_every
        assert wired.digest_chain == result.digest_chain
        assert wired.spec_json == result.spec_json
        chain = DigestChain.from_records(wired.digest_chain)
        assert chain.head == wired.digest_head

    def test_legacy_records_without_digests_still_parse(self):
        data = {
            "key": "k" * 64, "benchmark": "lj", "n_atoms": 256, "steps": 5,
            "seed": 1, "precision": "double", "backend": "numpy_fast",
            "backend_provider": None, "total_energy": -1.0,
            "potential_energy": -2.0, "temperature": 1.4,
            "state_digest": "d" * 64, "wall_seconds": 0.1, "ts_per_s": 50.0,
        }
        legacy = JobResult.from_json(data)
        assert legacy.digest_head is None
        assert legacy.digest_chain == []


class TestAuditFindings:
    def test_corrupted_chain_record_is_a_finding(self, tmp_path):
        result = execute_job(
            JobSpec(benchmark="lj", n_atoms=150, steps=6, seed=7)
        )
        path = tmp_path / f"{result.key}.json"
        data = result.to_json()
        data["digest_chain"][0]["digest"] = "0" * 64
        path.write_text(json.dumps(data))
        report = audit_cache(tmp_path)
        assert not report.ok
        assert any("chain" in problem for _, problem in report.findings)

    def test_record_under_wrong_address_is_a_finding(self, tmp_path):
        result = execute_job(
            JobSpec(benchmark="lj", n_atoms=150, steps=6, seed=8)
        )
        (tmp_path / f"{'a' * 64}.json").write_text(
            json.dumps(result.to_json())
        )
        report = audit_cache(tmp_path)
        assert not report.ok
        assert any("stored under" in problem for _, problem in report.findings)

    def test_forged_head_is_a_finding(self, tmp_path):
        result = execute_job(
            JobSpec(benchmark="lj", n_atoms=150, steps=6, seed=9)
        )
        data = result.to_json()
        data["digest_head"] = "e" * 64
        (tmp_path / f"{result.key}.json").write_text(json.dumps(data))
        report = audit_cache(tmp_path)
        assert not report.ok
        assert any("digest_head" in problem for _, problem in report.findings)
