"""Worker death at both levels: engine workers and pool workers.

The acceptance contract: a worker killed mid-job via the PR-4 fault
plan is respawned and the job completes with a result bitwise-identical
to an uninterrupted run of the same configuration.
"""

import os
import signal
import time

import pytest

from repro.service import BatchService, JobSpec, execute_job
from repro.service.pool import BOOT_FAILURE_LIMIT, WorkerPool


def two_worker_spec(**overrides) -> JobSpec:
    fields = dict(
        benchmark="lj", n_atoms=150, steps=16, seed=1, workers=2,
        checkpoint_every=4,
    )
    fields.update(overrides)
    return JobSpec(**fields)


class TestEngineWorkerFault:
    """PR-4 fault plan inside a job: ResilientRunner absorbs the kill."""

    def test_killed_engine_worker_job_completes_bitwise(self):
        interrupted = execute_job(two_worker_spec(fault_plan="kill:1:6"))
        clean = execute_job(two_worker_spec())
        assert interrupted.recovery_events >= 1
        assert clean.recovery_events == 0
        assert interrupted.state_digest == clean.state_digest
        assert interrupted.total_energy == clean.total_energy

    def test_fault_plan_shares_the_cache_address(self):
        assert (
            two_worker_spec(fault_plan="kill:1:6").cache_key()
            == two_worker_spec().cache_key()
        )

    def test_faulted_job_through_the_service(self):
        with BatchService(1, poll_seconds=0.02) as svc:
            job = svc.submit(two_worker_spec(fault_plan="kill:0:5"))
            result = job.result(240)
        assert result.recovery_events >= 1
        assert result.state_digest == execute_job(two_worker_spec()).state_digest


class TestStartMethodProbe:
    """Stdin-fed hosts can't serve spawn children; the default adapts."""

    def test_pytest_host_is_spawn_safe(self):
        from repro.service.pool import _spawn_can_import_main

        assert _spawn_can_import_main()

    def test_stdin_main_falls_back_to_fork(self, monkeypatch):
        import sys
        import types

        from repro.service.pool import _spawn_can_import_main

        fake = types.ModuleType("__main__")
        fake.__file__ = "<stdin>"
        monkeypatch.setitem(sys.modules, "__main__", fake)
        assert not _spawn_can_import_main()
        with pytest.warns(RuntimeWarning, match="not importable by spawn"):
            pool = WorkerPool(1)
        try:
            assert pool._ctx.get_start_method() == "fork"
        finally:
            pool.close()


class TestBootCrashLoop:
    """A worker dying before its ready handshake must not respawn forever."""

    def test_slot_retires_after_repeated_boot_failures(self):
        pool = WorkerPool(1)
        try:
            # Nothing drains next_event here, so the ready handshake is
            # never consumed: every death counts as a boot failure.
            respawned = True
            for _ in range(BOOT_FAILURE_LIMIT):
                assert not pool.retired(0)
                os.kill(pool.pid(0), signal.SIGKILL)
                pool._workers[0].join()
                respawned = pool.respawn(0)
            assert not respawned
            assert pool.retired(0)
            assert pool.usable_slots() == 0
        finally:
            pool.close()


class TestPoolWorkerDeath:
    """SIGKILL to the pool worker itself: respawn + requeue."""

    def test_job_survives_pool_worker_kill(self):
        with BatchService(1, poll_seconds=0.02) as svc:
            job = svc.submit(
                JobSpec(benchmark="lj", n_atoms=400, steps=300, seed=1)
            )
            deadline = time.monotonic() + 60
            while job.status != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.01)
            time.sleep(0.2)  # let it get properly mid-job
            os.kill(svc._pool.pid(0), signal.SIGKILL)
            result = job.result(240)
            respawns = svc.metrics.counter(
                "service_worker_respawns_total"
            ).value
        assert job.requeues == 1
        assert respawns >= 1
        assert result.steps == 300
        # Re-execution from scratch lands on the uninterrupted digest.
        reference = execute_job(
            JobSpec(benchmark="lj", n_atoms=400, steps=300, seed=1)
        )
        assert result.state_digest == reference.state_digest

    def test_repeated_deaths_fail_the_job_loudly(self):
        from repro.service import JobFailedError

        with BatchService(1, poll_seconds=0.02, max_requeues=0) as svc:
            job = svc.submit(
                JobSpec(benchmark="lj", n_atoms=400, steps=400, seed=2)
            )
            deadline = time.monotonic() + 60
            while job.status != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.01)
            os.kill(svc._pool.pid(0), signal.SIGKILL)
            with pytest.raises(JobFailedError, match="died"):
                job.result(240)
            # The respawned pool still serves fresh work.
            ok = svc.submit(
                JobSpec(benchmark="lj", n_atoms=150, steps=5, seed=3)
            )
            assert ok.result(240).steps == 5
