"""BatchService scheduling semantics: dedup, coalescing, lifecycle.

Real jobs on a real worker pool, sized to stay fast: small LJ systems,
a handful of steps.  The fault-path tests (worker death, recovery)
live in ``test_fault_recovery.py``.
"""

import pytest

from repro.service import (
    BatchService,
    JobFailedError,
    JobSpec,
    ServiceClosedError,
)


def spec(**overrides) -> JobSpec:
    fields = dict(benchmark="lj", n_atoms=150, steps=6, seed=1)
    fields.update(overrides)
    return JobSpec(**fields)


@pytest.fixture(scope="module")
def service():
    with BatchService(2, poll_seconds=0.02) as svc:
        yield svc


class TestScheduling:
    def test_job_completes_with_physics(self, service):
        result = service.submit(spec()).result(120)
        assert result.steps == 6
        assert result.n_atoms > 0
        assert len(result.state_digest) == 64
        assert result.ts_per_s > 0

    def test_inflight_duplicates_coalesce(self, service):
        one = spec(steps=7)
        a = service.submit(one)
        b = service.submit(one)
        assert a is b  # literally the same handle: one execution
        assert a.submitters >= 2
        assert service.metrics.counter("service_dedup_hits_total").value >= 1
        a.result(120)

    def test_completed_config_is_cache_served(self, service):
        one = spec(steps=8)
        first = service.submit(one).result(120)
        again = service.submit(one).result(5)
        assert not first.cached
        assert again.cached
        assert again.state_digest == first.state_digest

    def test_distinct_configs_get_distinct_results(self, service):
        a = service.submit(spec(seed=3))
        b = service.submit(spec(seed=4))
        assert a.key != b.key
        assert a.result(120).state_digest != b.result(120).state_digest

    def test_map_preserves_input_order(self, service):
        specs = [spec(steps=9), spec(steps=10), spec(steps=9)]
        results = service.map(specs, timeout=120)
        assert [r.steps for r in results] == [9, 10, 9]
        assert results[0].state_digest == results[2].state_digest

    def test_progress_reaches_completion(self, service):
        job = service.submit(spec(steps=11))
        job.result(120)
        done, total = job.progress
        assert (done, total) == (11, 11)

    def test_runtime_failure_raises_job_failed(self, service):
        # 60 atoms make a box smaller than the LJ cutoff demands; the
        # spec is well-formed but the build fails inside the worker.
        job = service.submit(spec(n_atoms=60))
        with pytest.raises(JobFailedError, match="cutoff"):
            job.result(120)
        # The pool survives a failing job and keeps serving.
        assert service.submit(spec(steps=12)).result(120).steps == 12


class TestLifecycle:
    def test_drain_refuses_new_work_and_finishes_old(self):
        svc = BatchService(1, poll_seconds=0.02)
        job = svc.submit(spec(steps=20, n_atoms=400))
        assert svc.drain(timeout=120)
        with pytest.raises(ServiceClosedError):
            svc.submit(spec(steps=21))
        assert job.done() and job.result(0).steps == 20
        svc.close()

    def test_wait_ready_reports_booted_pool(self):
        with BatchService(1, poll_seconds=0.02) as svc:
            assert svc.wait_ready(timeout=120)
            assert svc._pool.ready_count() == 1

    def test_metrics_flow_through_registry(self):
        with BatchService(1, poll_seconds=0.02) as svc:
            svc.submit(spec(steps=13)).result(120)
            snapshot = svc.metrics.snapshot()
        assert snapshot["service_jobs_submitted_total"]["value"] == 1
        assert snapshot["service_jobs_completed_total"]["value"] == 1
        assert snapshot["service_job_seconds"]["count"] == 1
        assert "service_queue_depth" in snapshot
