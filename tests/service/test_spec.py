"""Content-address stability: the contract the whole cache rides on.

The key must move when any result-determining field moves (deck
contents, steps, precision, seed, backend/provider) and must hold
still across dict ordering, construction order, and — the one that
catches ``id()``/``hash()`` leaks — separate interpreter processes.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service import JobSpec

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

DECK = """\
units lj
lattice fcc 0.8442
region box block 0 4 0 4 0 4
create_box 1 box
create_atoms 1 box
mass 1 1.0
pair_style lj/cut 2.5
pair_coeff 1 1 1.0 1.0 2.5
velocity all create 1.44 87287
timestep 0.005
run 10
"""


def base_spec(**overrides):
    fields = dict(benchmark="lj", n_atoms=500, steps=100, seed=1)
    fields.update(overrides)
    return JobSpec(**fields)


class TestKeySensitivity:
    def test_steps_change_key(self):
        assert base_spec().cache_key() != base_spec(steps=101).cache_key()

    def test_seed_changes_key(self):
        assert base_spec().cache_key() != base_spec(seed=2).cache_key()

    def test_precision_changes_key(self):
        assert (
            base_spec().cache_key()
            != base_spec(precision="single").cache_key()
        )

    def test_atom_count_changes_key(self):
        assert base_spec().cache_key() != base_spec(n_atoms=864).cache_key()

    def test_benchmark_changes_key(self):
        assert (
            base_spec().cache_key()
            != base_spec(benchmark="chain").cache_key()
        )

    def test_backend_changes_key(self):
        # numpy_ref and numpy_fast are both always available, so the
        # resolved names (and hence the keys) must differ.
        a = base_spec(backend="numpy_fast").cache_key()
        b = base_spec(backend="numpy_ref").cache_key()
        assert a != b

    def test_deck_contents_change_key(self):
        one = JobSpec(deck=DECK)
        other = JobSpec(deck=DECK.replace("run 10", "run 20"))
        assert one.cache_key() != other.cache_key()

    def test_deck_key_hashes_content_not_identity(self):
        assert JobSpec(deck=DECK).cache_key() == JobSpec(deck=str(DECK)).cache_key()


class TestKeyNeutrality:
    """Execution strategy must NOT move the address."""

    def test_workers_do_not_change_key(self):
        assert base_spec().cache_key() == base_spec(workers=4).cache_key()

    def test_fault_plan_does_not_change_key(self):
        assert (
            base_spec().cache_key()
            == base_spec(
                workers=2, fault_plan="kill:1:7", checkpoint_every=5
            ).cache_key()
        )

    def test_tag_does_not_change_key(self):
        assert base_spec().cache_key() == base_spec(tag="sweep-A").cache_key()

    def test_precision_spelling_is_canonicalized(self):
        assert (
            base_spec(precision="double").cache_key()
            == base_spec(precision="DOUBLE").cache_key()
        )

    def test_auto_backend_lands_on_resolved_address(self):
        from repro.md.kernels import resolve_auto_backend

        explicit = base_spec(backend=resolve_auto_backend()).cache_key()
        assert base_spec(backend="auto").cache_key() == explicit


class TestKeyStability:
    def test_dict_ordering_is_irrelevant(self):
        data = {"steps": 100, "benchmark": "lj", "seed": 1, "n_atoms": 500}
        reordered = dict(reversed(list(data.items())))
        assert (
            JobSpec.from_json(data).cache_key()
            == JobSpec.from_json(reordered).cache_key()
        )

    def test_key_is_stable_across_processes(self):
        spec = base_spec(backend="numpy_fast")
        program = (
            "from repro.service import JobSpec; import sys, json; "
            "print(JobSpec.from_json(json.loads(sys.argv[1])).cache_key())"
        )
        out = subprocess.run(
            [sys.executable, "-c", program, json.dumps(spec.to_json())],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
        )
        assert out.stdout.strip() == spec.cache_key()

    def test_effective_seed_resolves_builder_default(self):
        # lj's builder default is 12345; an explicit seed=12345 must
        # land on the same address as leaving the seed unset.
        assert (
            base_spec(seed=None).cache_key()
            == base_spec(seed=12345).cache_key()
        )


class TestValidation:
    def test_requires_exactly_one_workload(self):
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec(benchmark="lj", deck=DECK)
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec()

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(KeyError):
            JobSpec(benchmark="gromacs")

    def test_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            JobSpec(benchmark="lj", precision="quad")

    def test_rejects_nonpositive_steps(self):
        with pytest.raises(ValueError, match="steps"):
            JobSpec(benchmark="lj", steps=0)

    def test_steps_none_only_for_decks(self):
        with pytest.raises(ValueError, match="deck"):
            JobSpec(benchmark="lj", steps=None)
        assert JobSpec(deck=DECK, steps=None).steps is None

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown JobSpec fields"):
            JobSpec.from_json({"benchmark": "lj", "gpu_count": 8})

    def test_wire_roundtrip(self):
        spec = base_spec(workers=2, tag="t", backend="numpy_fast")
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_wire_roundtrip_preserves_deck_steps_none(self):
        # steps=None has a non-None default (100): the wire form must
        # carry it explicitly, or the worker runs 100 steps and the
        # wrong result is cached under the steps=None address.
        spec = JobSpec(deck=DECK, steps=None)
        wired = JobSpec.from_json(spec.to_json())
        assert wired.steps is None
        assert wired == spec
        assert wired.cache_key() == spec.cache_key()
