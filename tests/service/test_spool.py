"""Spool transport: the serve/submit file protocol, including drain."""

import json
import os
import threading
import time

import pytest

from repro.service import BatchService, JobSpec, SpoolClient, SpoolServer
from repro.service.spool import spool_layout


def spec(**overrides) -> JobSpec:
    fields = dict(benchmark="lj", n_atoms=150, steps=5, seed=1)
    fields.update(overrides)
    return JobSpec(**fields)


@pytest.fixture()
def spool(tmp_path):
    svc = BatchService(1, cache_dir=tmp_path / "spool" / "cache",
                       poll_seconds=0.02)
    server = SpoolServer(tmp_path / "spool", svc, poll=0.02)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"max_seconds": 120}, daemon=True
    )
    thread.start()
    yield tmp_path / "spool", server
    server.request_stop()
    thread.join(timeout=120)
    svc.close()


class TestRoundTrip:
    def test_submit_wait_returns_result(self, spool):
        root, _server = spool
        client = SpoolClient(root)
        result = client.run(spec(), timeout=120)
        assert result.steps == 5
        assert not result.cached

    def test_resubmission_is_cache_served(self, spool):
        root, _server = spool
        client = SpoolClient(root)
        first = client.run(spec(steps=6), timeout=120)
        again = client.run(spec(steps=6), timeout=120)
        assert again.cached
        assert again.state_digest == first.state_digest

    def test_bad_request_gets_failed_ticket(self, spool):
        root, _server = spool
        client = SpoolClient(root)
        ticket = "deadbeef"
        (root / "pending" / f"{ticket}.json").write_text(
            json.dumps({"ticket": ticket, "spec": {"benchmark": "gromacs"}})
        )
        with pytest.raises(RuntimeError, match="failed"):
            client.wait(ticket, timeout=120)

    def test_claim_is_spent_after_answer(self, spool):
        root, _server = spool
        client = SpoolClient(root)
        client.run(spec(steps=7), timeout=120)
        assert list((root / "pending").glob("*.json")) == []
        # The claimed file is deleted once the ticket is answered (the
        # unlink lands just after the reply write, hence the grace
        # loop) — a surviving claim would mean an unanswered job.
        deadline = time.monotonic() + 5
        while list((root / "claimed").glob("*.json")):
            assert time.monotonic() < deadline, "claim never cleaned up"
            time.sleep(0.02)


class TestDrain:
    def test_stop_answers_inflight_and_leaves_new_pending(self, tmp_path):
        svc = BatchService(1, poll_seconds=0.02)
        server = SpoolServer(tmp_path / "s", svc, poll=0.02)
        client = SpoolClient(tmp_path / "s")
        ticket = client.submit(spec(steps=8))
        server.step()  # claim + submit to the service
        server.request_stop()
        server.serve_forever()  # returns immediately: drains, answers
        result = client.wait(ticket, timeout=5)
        assert result.steps == 8
        # Submissions after the drain stay untouched in pending/ for
        # the next server process.
        late = client.submit(spec(steps=9))
        server.step()
        assert (tmp_path / "s" / "pending" / f"{late}.json").exists()
        svc.close()

    def test_orphaned_claim_is_recovered_on_startup(self, tmp_path):
        # A server SIGKILLed mid-job leaves its claim behind with no
        # answer; a fresh server must requeue it, not lose the ticket.
        root = tmp_path / "s"
        client = SpoolClient(root)
        ticket = client.submit(spec(steps=14))
        os.replace(
            root / "pending" / f"{ticket}.json",
            root / "claimed" / f"{ticket}.json",
        )
        svc = BatchService(1, poll_seconds=0.02)
        server = SpoolServer(root, svc, poll=0.02)
        assert (root / "pending" / f"{ticket}.json").exists()
        deadline = time.monotonic() + 120
        while not (root / "tickets" / f"{ticket}.json").exists():
            assert time.monotonic() < deadline, "ticket never answered"
            server.step()
            time.sleep(0.02)
        assert client.wait(ticket, timeout=5).steps == 14
        svc.close()

    def test_answered_claim_is_deleted_not_requeued(self, tmp_path):
        layout = spool_layout(tmp_path / "s")
        (layout["claimed"] / "t1.json").write_text("{}")
        (layout["tickets"] / "t1.json").write_text("{}")
        svc = BatchService(1, poll_seconds=0.02)
        SpoolServer(tmp_path / "s", svc, poll=0.02)
        assert not (layout["claimed"] / "t1.json").exists()
        assert list(layout["pending"].glob("*.json")) == []
        svc.close()

    def test_cache_survives_server_restart(self, tmp_path):
        root = tmp_path / "s"

        def pump(server, client, ticket):
            # Drive the serve loop by hand until the ticket is answered.
            deadline = time.monotonic() + 120
            path = root / "tickets" / f"{ticket}.json"
            while not path.exists():
                assert time.monotonic() < deadline, "ticket never answered"
                server.step()
                time.sleep(0.02)
            return client.wait(ticket, timeout=5)

        svc1 = BatchService(1, cache_dir=root / "cache", poll_seconds=0.02)
        server1 = SpoolServer(root, svc1, poll=0.02)
        client = SpoolClient(root)
        first = pump(server1, client, client.submit(spec(steps=10)))
        svc1.close()

        svc2 = BatchService(1, cache_dir=root / "cache", poll_seconds=0.02)
        server2 = SpoolServer(root, svc2, poll=0.02)
        again = pump(server2, client, client.submit(spec(steps=10)))
        svc2.close()
        assert again.cached
        assert again.state_digest == first.state_digest
