"""Tests for the ablation/extension studies."""

import pytest

from repro.studies.fft_precision import fft_precision_study
from repro.studies.gpu_ranks import (
    best_total_ranks,
    gpu_rank_tuning_study,
    verify_paper_claim,
)
from repro.studies.newton import newton_ablation
from repro.studies.skin import (
    optimal_skin,
    skin_sweep_functional,
    skin_sweep_model,
)
from repro.studies.weak_scaling import weak_scaling_study


class TestSkinSweep:
    def test_model_tradeoff_is_convex(self):
        """Too-small and too-large skins both lose; the optimum sits
        near Table 2's 0.3 sigma for the LJ melt."""
        points = skin_sweep_model(skins=(0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2))
        times = [p.step_seconds for p in points]
        best = optimal_skin(points)
        assert 0.1 <= best <= 0.5
        assert times[0] > min(times)  # tiny skin: constant rebuilding
        assert times[-1] > min(times)  # huge skin: bloated lists

    def test_model_rebuild_cadence_grows_with_skin(self):
        points = skin_sweep_model(skins=(0.1, 0.3, 0.8))
        cadences = [p.rebuild_every for p in points]
        assert cadences == sorted(cadences)

    def test_functional_engine_confirms_cadence_trend(self):
        """The real engine rebuilds less often with a larger skin."""
        points = skin_sweep_functional(
            "lj", n_atoms=300, skins=(0.1, 0.5), n_steps=80
        )
        assert points[1].rebuild_every > points[0].rebuild_every
        assert points[1].stored_pairs_per_atom > points[0].stored_pairs_per_atom

    def test_optimal_skin_requires_points(self):
        with pytest.raises(ValueError):
            optimal_skin([])


class TestNewtonAblation:
    def test_newton_on_wins_at_scale(self):
        """Halved pair work dominates when compute-bound."""
        comparisons = newton_ablation(sizes=(2_048_000,), rank_counts=(1,))
        assert comparisons[0].speedup_from_newton > 1.3

    def test_gain_shrinks_when_comm_bound(self):
        """The reverse force exchange eats the gain for small systems
        at high rank counts."""
        comparisons = newton_ablation(sizes=(32_000,), rank_counts=(1, 64))
        serial, wide = comparisons
        assert wide.speedup_from_newton < serial.speedup_from_newton

    def test_workload_registry_restored(self):
        from repro.perfmodel.workloads import get_workload

        newton_ablation(sizes=(32_000,), rank_counts=(1,))
        assert get_workload("chute").newton is False  # paper setting intact


class TestGpuRankTuning:
    def test_throughput_grows_up_to_48(self):
        points = gpu_rank_tuning_study(rank_budgets=(8, 16, 32, 48))
        series = [p.ts_per_s for p in points]
        assert series == sorted(series)

    def test_best_is_48_total_ranks(self):
        points = gpu_rank_tuning_study()
        assert best_total_ranks(points) == 48

    def test_paper_claim_more_than_48_never_helps(self):
        assert verify_paper_claim(benchmarks=("lj", "rhodo"))

    def test_best_requires_points(self):
        with pytest.raises(ValueError):
            best_total_ranks([])


class TestWeakScaling:
    def test_weak_efficiency_stays_high(self):
        """The prior-work result: weak scaling is good (>80% at 64)."""
        points = weak_scaling_study("lj")
        assert points[-1].n_ranks == 64
        assert points[-1].weak_efficiency > 0.8

    def test_weak_beats_strong_at_64_ranks(self):
        from repro.parallel import simulate_cpu_run

        weak = weak_scaling_study("chute", rank_counts=(1, 64))[-1]
        strong_1 = simulate_cpu_run("chute", 2_048_000, 1)
        strong_64 = simulate_cpu_run("chute", 2_048_000, 64)
        strong_eff = strong_64.ts_per_s / (strong_1.ts_per_s * 64)
        assert weak.weak_efficiency > strong_eff

    def test_atoms_grow_with_ranks(self):
        points = weak_scaling_study("eam", atoms_per_rank=10_000, rank_counts=(1, 4))
        assert points[1].n_atoms == 4 * points[0].n_atoms

    def test_invalid_atoms_per_rank(self):
        with pytest.raises(ValueError):
            weak_scaling_study("lj", atoms_per_rank=0)


class TestFftPrecision:
    def test_penalty_negligible_at_baseline_threshold(self):
        points = fft_precision_study(thresholds=(1e-4,))
        assert points[0].slowdown < 1.05

    def test_penalty_grows_with_tighter_threshold(self):
        points = fft_precision_study(thresholds=(1e-4, 1e-6, 1e-7))
        slowdowns = [p.slowdown for p in points]
        assert slowdowns == sorted(slowdowns)
        assert slowdowns[-1] > 1.2  # -DFFT_SINGLE matters at 1e-7
