"""Tests for the Section 10 takeaway projections."""

import pytest

from repro.studies.takeaways import (
    GPU_IMPROVEMENTS,
    commodity_fleet_gap,
    dsa_gap,
    project_cpu_balance,
    project_gpu_improvements,
)


class TestGpuProjections:
    @pytest.fixture(scope="class")
    def projections(self):
        return project_gpu_improvements()

    def test_baseline_is_reference(self, projections):
        assert projections["baseline"]["speedup"] == pytest.approx(1.0)

    def test_every_direction_helps(self, projections):
        for name, metrics in projections.items():
            if name == "baseline":
                continue
            assert metrics["speedup"] >= 1.0, name

    def test_porting_fixes_is_the_biggest_single_lever(self, projections):
        """Section 6.1 flags SHAKE-on-host as the next step for a reason:
        for Rhodopsin it beats interconnect and kernel-fusion fixes."""
        port = projections["port-fixes-to-gpu"]["speedup"]
        assert port > projections["nvlink-class-interconnect"]["speedup"]
        assert port > projections["fused-kernels"]["speedup"]

    def test_combined_beats_each_individual(self, projections):
        combined = projections["all-combined"]["speedup"]
        for name, metrics in projections.items():
            if name == "all-combined":
                continue
            assert combined >= metrics["speedup"]

    def test_combined_raises_utilization(self, projections):
        """Section 10: better utilization is the path — the combined
        improvements push the ~30-40% baseline well up."""
        assert (
            projections["all-combined"]["gpu_utilization"]
            > projections["baseline"]["gpu_utilization"] + 0.1
        )

    def test_improvement_catalogue_named(self):
        names = [imp.name for imp in GPU_IMPROVEMENTS]
        assert names[0] == "baseline"
        assert "all-combined" in names


class TestCpuBalance:
    def test_chute_recovers_most(self):
        """Section 10's other direction: Chute (worst imbalance) has the
        most to gain from balancing."""
        chute = project_cpu_balance("chute")
        eam = project_cpu_balance("eam")
        assert chute["speedup"] > eam["speedup"] >= 1.0

    def test_registry_restored(self):
        from repro.perfmodel.workloads import get_workload

        project_cpu_balance("chain")
        assert get_workload("chain").imbalance_amplitude > 0


class TestDsaGap:
    def test_single_node_gap_is_huge(self):
        """'We are still very far from milliseconds-scale experiments on
        commodity hardware' — a single node is 10^4x off Anton 3."""
        assert dsa_gap(2.5) > 10_000

    def test_fleet_gap_in_papers_band(self):
        """Like-for-like (512 nodes each): 'up to 1000x slower'."""
        gap = commodity_fleet_gap()
        assert 100 < gap < 2_000

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            dsa_gap(0.0)
