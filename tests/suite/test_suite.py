"""Tests for the benchmark suite: builders, taxonomy, registry.

The paper's five workloads plus the Tersoff multi-body extension.
"""

import numpy as np
import pytest

from repro.suite import (
    BENCHMARK_NAMES,
    CPU_BENCHMARKS,
    GPU_BENCHMARKS,
    PAPER_BENCHMARKS,
    get_benchmark,
    registry,
)


class TestRegistry:
    def test_all_six_present(self):
        assert set(BENCHMARK_NAMES) == {
            "rhodo",
            "lj",
            "chain",
            "eam",
            "chute",
            "tersoff",
        }

    def test_paper_set_is_the_original_five(self):
        assert set(PAPER_BENCHMARKS) == {"rhodo", "lj", "chain", "eam", "chute"}

    def test_cpu_covers_the_modeled_five(self):
        """The CPU characterization (and the calibrated perf model built
        from it) spans the paper's Table 2 set; Tersoff is measured-only."""
        assert CPU_BENCHMARKS == PAPER_BENCHMARKS
        assert "tersoff" not in CPU_BENCHMARKS

    def test_gpu_excludes_chute_and_tersoff(self):
        """Section 6: the GPU package lacks the gran/hooke pair style;
        the Tersoff workload is CPU-only too."""
        assert "chute" not in GPU_BENCHMARKS
        assert "tersoff" not in GPU_BENCHMARKS
        assert set(GPU_BENCHMARKS) == {"rhodo", "lj", "chain", "eam"}

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("namd")

    def test_lookup_returns_definition(self):
        assert get_benchmark("lj").name == "lj"


class TestTaxonomyTable2:
    """The Table 2 rows, verbatim."""

    def test_min_atoms_32k_everywhere(self):
        assert all(d.taxonomy.min_atoms == 32_000 for d in registry.values())

    @pytest.mark.parametrize(
        "name,cutoff,skin,neighbors",
        [
            ("rhodo", 10.0, 2.0, 440),
            ("lj", 2.5, 0.3, 55),
            ("chain", 1.12, 0.4, 5),
            ("eam", 4.95, 1.0, 45),
            ("chute", 1.0, 0.1, 7),
            # Not a Table 2 row: the Tersoff extension workload.
            ("tersoff", 3.0, 1.0, 4),
        ],
    )
    def test_cutoffs_and_neighbors(self, name, cutoff, skin, neighbors):
        tax = registry[name].taxonomy
        assert tax.cutoff == pytest.approx(cutoff)
        assert tax.neighbor_skin == pytest.approx(skin)
        assert tax.neighbors_per_atom == neighbors

    def test_only_rhodo_has_kspace(self):
        for name, definition in registry.items():
            assert definition.taxonomy.computes_long_range == (name == "rhodo")
        assert registry["rhodo"].taxonomy.kspace_style == "pppm"
        assert registry["rhodo"].taxonomy.kspace_error == pytest.approx(1e-4)

    def test_only_rhodo_uses_npt(self):
        for name, definition in registry.items():
            expected = "NPT" if name == "rhodo" else "NVE"
            assert definition.taxonomy.integration == expected

    def test_full_list_workloads_ignore_newton(self):
        # Chute (frictional history) and Tersoff (directed bond order)
        # evaluate every ordered pair, so there is no Newton saving.
        for name, definition in registry.items():
            assert definition.newton == (name not in ("chute", "tersoff"))

    def test_force_fields(self):
        assert registry["rhodo"].taxonomy.force_field == "CHARMM"
        assert registry["eam"].taxonomy.force_field == "EAM"
        assert registry["chute"].taxonomy.force_field == "gran/hooke/history"
        assert registry["tersoff"].taxonomy.force_field == "Tersoff"


class TestBuilders:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_build_and_run_short(self, name):
        sim = registry[name].build(200)
        sim.run(5)
        assert sim.counts.timesteps == 5
        assert np.all(np.isfinite(sim.system.positions))
        assert np.all(np.isfinite(sim.system.velocities))

    def test_lj_neighbors_match_table2(self):
        sim = get_benchmark("lj").build(500)
        sim.setup()
        measured = sim.neighbor.stats.last_neighbors_per_atom
        assert measured == pytest.approx(55, rel=0.06)

    def test_eam_neighbors_match_table2(self):
        sim = get_benchmark("eam").build(500)
        sim.setup()
        measured = sim.neighbor.stats.last_neighbors_per_atom
        assert measured == pytest.approx(45, rel=0.12)

    def test_chain_neighbors_close_to_table2(self):
        sim = get_benchmark("chain").build(400)
        sim.setup()
        # Small melts under-report slightly; Table 2 says 5.
        assert 2.5 <= sim.neighbor.stats.last_neighbors_per_atom <= 7.0

    def test_rhodo_stack_complete(self):
        sim = get_benchmark("rhodo").build(250)
        assert sim.kspace is not None
        assert sim.constraints is not None and sim.constraints.n_constraints > 0
        from repro.md.integrators import NoseHooverNPT

        assert isinstance(sim.integrator, NoseHooverNPT)

    def test_chute_uses_full_list_and_fixes(self):
        sim = get_benchmark("chute").build(150)
        assert sim.neighbor.full
        assert len(sim.fixes) == 2  # gravity + wall

    def test_rhodo_error_threshold_configurable(self):
        loose = get_benchmark("rhodo").build(250, kspace_error=1e-4)
        tight = get_benchmark("rhodo").build(250, kspace_error=1e-6)
        assert tight.kspace.grid_points > loose.kspace.grid_points

    def test_builds_are_deterministic(self):
        a = get_benchmark("lj").build(200, seed=9)
        b = get_benchmark("lj").build(200, seed=9)
        assert np.allclose(a.system.positions, b.system.positions)
        assert np.allclose(a.system.velocities, b.system.velocities)


class TestStability:
    def test_rhodo_runs_stably_with_shake(self):
        sim = get_benchmark("rhodo").build(250)
        sim.run(20)
        assert sim.constraints.max_violation(sim.system) < 1e-3
        assert np.isfinite(sim.total_energy())

    def test_chain_melt_survives_dynamics(self):
        sim = get_benchmark("chain").build(300)
        sim.run(50)  # FENE raises FloatingPointError on blow-up
        assert np.isfinite(sim.total_energy())

    def test_chute_flows_downhill(self):
        sim = get_benchmark("chute").build(200)
        sim.run(400)
        # Gravity is tilted along +x: the bed drifts that way.
        assert sim.system.velocities[:, 0].mean() > 0


class TestCrossLayerConsistency:
    """Suite definitions and perf-model workloads agree where they overlap."""

    @pytest.mark.parametrize("name", CPU_BENCHMARKS)
    def test_shared_fields_in_sync(self, name):
        from repro.perfmodel.workloads import get_workload

        definition = registry[name]
        workload = get_workload(name)
        assert definition.newton == workload.newton
        assert definition.gpu_supported == workload.gpu_supported
        assert definition.timestep_fs == pytest.approx(workload.timestep_fs)
        assert definition.taxonomy.computes_long_range == workload.has_kspace
        assert definition.taxonomy.cutoff == pytest.approx(workload.cutoff)
        assert definition.taxonomy.neighbor_skin == pytest.approx(workload.skin)
        assert definition.taxonomy.neighbors_per_atom == pytest.approx(
            workload.neighbors_per_atom
        )
