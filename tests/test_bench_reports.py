"""The shared ``repro-bench-report/2`` envelope and the tracked records.

Satellite of the campaign-orchestrator PR: every benchmark harness now
emits one versioned envelope (backend, precision, energy provenance,
platform) defined once in :mod:`repro.report`, and each tracked
``BENCH_*.json`` at the repo root must validate against it.
"""

import json
from pathlib import Path

import pytest

from repro.report import (
    ENERGY_KINDS,
    KINDS,
    SCHEMA,
    ReportError,
    energy_provenance,
    load_report,
    make_report,
    platform_info,
    validate_report,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

TRACKED = {
    "BENCH_kernels.json": "kernels",
    "BENCH_precision.json": "precision",
    "BENCH_scaling.json": "scaling",
    "BENCH_service.json": "service",
}


class TestTrackedRecords:
    @pytest.mark.parametrize("filename,kind", sorted(TRACKED.items()))
    def test_tracked_bench_validates(self, filename, kind):
        path = REPO_ROOT / filename
        if not path.exists():
            pytest.skip(f"{filename} not generated on this checkout")
        record = load_report(path)
        assert record["kind"] == kind

    @pytest.mark.parametrize("filename", sorted(TRACKED))
    def test_tracked_bench_keeps_legacy_payload(self, filename):
        """Migration added the envelope without dropping consumer keys."""
        path = REPO_ROOT / filename
        if not path.exists():
            pytest.skip(f"{filename} not generated on this checkout")
        record = json.loads(path.read_text())
        expected = {
            "BENCH_kernels.json": ("results", "speedups"),
            "BENCH_precision.json": ("results", "summary"),
            "BENCH_scaling.json": ("serial", "scaling", "parity"),
            "BENCH_service.json": ("sweep", "speedup_jobs_per_min"),
        }[filename]
        for key in expected:
            assert key in record, f"{filename} lost payload key {key}"


class TestMakeReport:
    def test_minimal_report_validates(self):
        record = make_report("kernels")
        assert record["schema"] == SCHEMA
        assert record["backend"] == {"requested": "auto", "resolved": "auto"}
        assert record["precision"] == "double"
        assert record["energy"]["kind"] == "unavailable"

    def test_bare_backend_name_expands(self):
        record = make_report("scaling", backend="numpy_fast")
        assert record["backend"]["requested"] == "numpy_fast"
        assert record["backend"]["resolved"] == "numpy_fast"

    def test_payload_merges_at_top_level(self):
        record = make_report("service", results=[1, 2], summary={"x": 1})
        assert record["results"] == [1, 2]
        assert record["summary"] == {"x": 1}

    def test_payload_cannot_shadow_envelope(self):
        with pytest.raises(ReportError, match="shadows envelope"):
            make_report("kernels", schema="evil")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReportError, match="kind"):
            make_report("fridge")

    def test_precision_list_accepted(self):
        record = make_report("precision", precision=["single", "mixed", "double"])
        assert record["precision"] == ["single", "mixed", "double"]


class TestValidateReport:
    def _good(self):
        return make_report("campaign")

    def test_round_trips(self):
        assert validate_report(self._good()) is not None

    def test_non_dict_rejected(self):
        with pytest.raises(ReportError, match="must be a dict"):
            validate_report([1, 2, 3])

    def test_wrong_schema_rejected(self):
        record = self._good()
        record["schema"] = "repro-bench-kernels/1"
        with pytest.raises(ReportError, match="schema"):
            validate_report(record)

    def test_bad_precision_rejected(self):
        record = self._good()
        record["precision"] = "quad"
        with pytest.raises(ReportError, match="precision"):
            validate_report(record)

    def test_empty_precision_list_rejected(self):
        record = self._good()
        record["precision"] = []
        with pytest.raises(ReportError, match="empty"):
            validate_report(record)

    def test_missing_platform_field_rejected(self):
        record = self._good()
        del record["platform"]["numpy"]
        with pytest.raises(ReportError, match="platform.numpy"):
            validate_report(record)

    def test_backend_requires_requested_and_resolved(self):
        record = self._good()
        record["backend"] = {"requested": "auto"}
        with pytest.raises(ReportError, match="backend.resolved"):
            validate_report(record)

    def test_bad_energy_kind_rejected(self):
        record = self._good()
        record["energy"] = {"provider": "rapl", "kind": "guessed"}
        with pytest.raises(ReportError, match="energy.kind"):
            validate_report(record)

    def test_problems_are_aggregated(self):
        record = self._good()
        record["kind"] = "nope"
        record["precision"] = "quad"
        with pytest.raises(ReportError, match="kind.*precision"):
            validate_report(record)

    def test_created_unix_must_be_positive(self):
        record = self._good()
        record["created_unix"] = -5
        with pytest.raises(ReportError, match="created_unix"):
            validate_report(record)


class TestHelpers:
    def test_platform_info_has_required_fields(self):
        info = platform_info()
        for field in ("python", "numpy", "machine", "system"):
            assert isinstance(info[field], str) and info[field]

    def test_platform_info_extras_merge(self):
        assert platform_info(cores=4)["cores"] == 4

    def test_energy_provenance_names_a_known_kind(self):
        assert energy_provenance()["kind"] in ENERGY_KINDS

    def test_all_kinds_buildable(self):
        for kind in KINDS:
            assert make_report(kind)["kind"] == kind
