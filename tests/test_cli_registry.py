"""The declarative CLI registry: every command registers and helps.

Satellite of the campaign-orchestrator PR: ``python -m repro`` is now
a registry of self-describing subcommands with shared option groups,
and this module is the ``--help``-coverage smoke test over all of
them — a command whose configure hook raises, or whose module forgot
to register, fails here before any user hits it.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, command, main, registered_commands

#: Every subcommand the toolkit ships; presentation order.
EXPECTED_COMMANDS = (
    "campaign",
    "model-campaign",
    "figure",
    "anchors",
    "run-deck",
    "trace",
    "power",
    "scale",
    "checkpoint",
    "serve",
    "submit",
    "certify",
)


class TestRegistry:
    def test_all_commands_registered_in_order(self):
        assert tuple(registered_commands()) == EXPECTED_COMMANDS

    def test_duplicate_registration_rejected(self):
        registered_commands()  # ensure "trace" is loaded
        with pytest.raises(ValueError, match="duplicate CLI command"):
            command("trace", "imposter")(lambda args: 0)

    def test_every_command_has_a_help_line(self):
        for cmd in registered_commands().values():
            assert cmd.help and not cmd.help.endswith(".")


class TestHelpCoverage:
    def test_top_level_help_lists_every_command(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in EXPECTED_COMMANDS:
            assert name in out

    @pytest.mark.parametrize("name", EXPECTED_COMMANDS)
    def test_command_help_exits_clean(self, name, capsys):
        """`python -m repro <cmd> --help` works for every command."""
        with pytest.raises(SystemExit) as excinfo:
            main([name, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert f"python -m repro {name}" in out

    def test_no_command_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestSharedOptionGroups:
    """--precision/--backend/--workers are spelled once, used everywhere."""

    def _options_of(self, name: str) -> set[str]:
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if hasattr(a, "choices") and a.choices and name in a.choices
        )
        return {
            s for action in sub.choices[name]._actions
            for s in action.option_strings
        }

    @pytest.mark.parametrize("name", ("scale", "checkpoint", "submit", "certify"))
    def test_precision_and_workers_everywhere(self, name):
        options = self._options_of(name)
        assert "--precision" in options
        assert "--workers" in options

    @pytest.mark.parametrize("name", ("scale", "submit", "certify"))
    def test_backend_where_kernels_are_selectable(self, name):
        assert "--backend" in self._options_of(name)

    def test_precision_choices_are_canonical(self, capsys):
        with pytest.raises(SystemExit):
            main(["scale", "lj", "--precision", "quad"])
        assert "single" in capsys.readouterr().err


class TestCampaignCommand:
    def test_dry_run_prints_matrix_without_executing(self, tmp_path, capsys):
        spec = tmp_path / "c.toml"
        spec.write_text(
            '[campaign]\nname = "dry"\n'
            '[base]\nbenchmark = "lj"\nn_atoms = 150\nsteps = 5\n'
            "[sweep]\nworkers = [1, 2]\n"
        )
        assert main(["campaign", str(spec), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "2 cells, 1 unique content addresses" in out
        assert "workers=1" in out and "workers=2" in out

    def test_invalid_spec_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "bad.toml"
        spec.write_text('[campaign]\nname = "x"\n[sweep]\nworkers = []\n')
        assert main(["campaign", str(spec)]) == 2
        assert "invalid campaign spec" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["campaign", str(tmp_path / "nope.toml")]) == 2

    def test_legacy_import_path_still_works(self):
        from repro.__main__ import main as shim_main

        assert shim_main is main
