"""Documentation-coverage gates: every public item is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


def _import_or_skip(name):
    """Import a module, skipping when an optional dependency is absent.

    Provider modules (e.g. ``_numba_impl``) import their third-party
    dependency at the top level on purpose — the backend resolves them
    inside a ``try`` block — so a missing optional package is a skip
    here, not a documentation failure.
    """
    try:
        return importlib.import_module(name)
    except ModuleNotFoundError as exc:
        if exc.name and exc.name.startswith("repro"):
            raise
        pytest.skip(f"optional dependency missing: {exc.name}")


@pytest.mark.parametrize("name", _all_modules())
def test_module_has_docstring(name):
    module = _import_or_skip(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, name


@pytest.mark.parametrize("name", _all_modules())
def test_public_classes_and_functions_documented(name):
    module = _import_or_skip(name)
    for attr_name in getattr(module, "__all__", []):
        obj = getattr(module, attr_name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            # Only check items defined in this package (not re-exports
            # of third-party objects).
            if getattr(obj, "__module__", "").startswith("repro"):
                assert obj.__doc__, f"{name}.{attr_name} lacks a docstring"


def test_repo_documents_exist():
    from pathlib import Path

    root = Path(repro.__file__).resolve().parents[2]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                "docs/MODEL.md", "docs/PHYSICS.md"):
        path = root / doc
        assert path.exists(), doc
        assert len(path.read_text()) > 1000, doc
