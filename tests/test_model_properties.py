"""Hypothesis property tests over the whole performance-model surface.

Randomized configurations (benchmark x size x resources x precision x
threshold) must always satisfy the structural invariants — regardless of
where in the campaign space they land.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import simulate_gpu_run
from repro.parallel import simulate_cpu_run
from repro.suite import CPU_BENCHMARKS, GPU_BENCHMARKS

cpu_bench = st.sampled_from(CPU_BENCHMARKS)
gpu_bench = st.sampled_from(GPU_BENCHMARKS)
size = st.sampled_from([32_000, 137_000, 256_000, 864_000, 2_048_000])
ranks = st.sampled_from([1, 2, 3, 4, 8, 12, 16, 32, 48, 64])
gpus = st.sampled_from([1, 2, 3, 4, 5, 6, 7, 8])
precision = st.sampled_from(["single", "mixed", "double"])


class TestCpuModelInvariants:
    @given(bench=cpu_bench, n=size, p=ranks, prec=precision)
    @settings(max_examples=40, deadline=None)
    def test_result_well_formed(self, bench, n, p, prec):
        r = simulate_cpu_run(bench, n, p, precision=prec)
        assert r.ts_per_s > 0 and np.isfinite(r.ts_per_s)
        assert r.step_seconds == pytest.approx(1.0 / r.ts_per_s)
        assert 0 <= r.mpi_imbalance_fraction <= r.mpi_time_fraction <= 1.0
        assert 0 < r.core_utilization <= 1.0
        assert r.power_watts > 0
        fractions = r.task_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in fractions.values())

    @given(bench=cpu_bench, n=size, p=st.sampled_from([2, 4, 8, 16, 32, 64]))
    @settings(max_examples=30, deadline=None)
    def test_parallel_efficiency_never_exceeds_one(self, bench, n, p):
        serial = simulate_cpu_run(bench, n, 1)
        parallel = simulate_cpu_run(bench, n, p)
        assert parallel.ts_per_s <= serial.ts_per_s * p * (1 + 1e-9)

    @given(bench=cpu_bench, n=size, p=ranks)
    @settings(max_examples=30, deadline=None)
    def test_double_never_faster_than_single(self, bench, n, p):
        single = simulate_cpu_run(bench, n, p, precision="single")
        double = simulate_cpu_run(bench, n, p, precision="double")
        assert double.ts_per_s <= single.ts_per_s * (1 + 1e-9)

    @given(n=size, p=ranks, acc=st.sampled_from([1e-4, 1e-5, 1e-6, 1e-7]))
    @settings(max_examples=25, deadline=None)
    def test_tighter_threshold_never_faster(self, n, p, acc):
        base = simulate_cpu_run("rhodo", n, p, kspace_error=1e-4)
        swept = simulate_cpu_run("rhodo", n, p, kspace_error=acc)
        assert swept.ts_per_s <= base.ts_per_s * (1 + 1e-9)

    @given(bench=cpu_bench, n=size, p=ranks)
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, bench, n, p):
        a = simulate_cpu_run(bench, n, p)
        b = simulate_cpu_run(bench, n, p)
        assert a.ts_per_s == b.ts_per_s
        assert a.task_seconds == b.task_seconds


class TestGpuModelInvariants:
    @given(bench=gpu_bench, n=size, g=gpus, prec=precision)
    @settings(max_examples=40, deadline=None)
    def test_result_well_formed(self, bench, n, g, prec):
        r = simulate_gpu_run(bench, n, g, precision=prec)
        assert r.ts_per_s > 0 and np.isfinite(r.ts_per_s)
        assert 0 < r.gpu_utilization <= 1.0
        assert 0 <= r.pcie_utilization <= 1.0
        assert r.total_ranks <= 48
        assert sum(r.task_fractions().values()) == pytest.approx(1.0)
        assert sum(r.kernel_fractions().values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in r.kernel_seconds.values())

    @given(bench=gpu_bench, n=size, g=st.sampled_from([2, 4, 6, 8]))
    @settings(max_examples=25, deadline=None)
    def test_multi_gpu_efficiency_near_or_below_one(self, bench, n, g):
        """Splitting atoms over devices relieves the neighbor kernel's
        occupancy congestion, so mild super-linearity (like cache-driven
        super-linearity on real hardware) is possible — but bounded."""
        one = simulate_gpu_run(bench, n, 1)
        many = simulate_gpu_run(bench, n, g)
        assert many.ts_per_s <= one.ts_per_s * g * 1.10

    @given(n=size, g=gpus)
    @settings(max_examples=20, deadline=None)
    def test_memcpy_always_present(self, n, g):
        r = simulate_gpu_run("lj", n, g)
        assert r.kernel_seconds["[CUDA memcpy HtoD]"] > 0
        assert r.kernel_seconds["[CUDA memcpy DtoH]"] > 0
