"""Public-API surface tests: every advertised name imports and exists."""

import importlib

import pytest

PACKAGES = (
    "repro",
    "repro.md",
    "repro.md.potentials",
    "repro.md.kspace",
    "repro.suite",
    "repro.platforms",
    "repro.observability",
    "repro.observability.telemetry",
    "repro.perfmodel",
    "repro.parallel",
    "repro.service",
    "repro.gpu",
    "repro.core",
    "repro.figures",
    "repro.studies",
)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} advertised but missing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_figure_modules_expose_generate():
    for n in (*range(3, 17),):
        module = importlib.import_module(f"repro.figures.fig{n:02d}")
        assert callable(module.generate)
    for name in ("table2", "table3", "headline"):
        module = importlib.import_module(f"repro.figures.{name}")
        assert callable(module.generate)


def test_md_facade_covers_engine_features():
    import repro.md as md

    for name in (
        "Simulation",
        "NeighborList",
        "PPPM",
        "EwaldSummation",
        "ShakeConstraints",
        "CosineDihedral",
        "RadialDistribution",
        "XyzDumpWriter",
        "minimize",
        "save_snapshot",
    ):
        assert hasattr(md, name)


def test_cli_module_importable():
    module = importlib.import_module("repro.__main__")
    assert callable(module.main)
